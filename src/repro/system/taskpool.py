"""Task-pool offload: a batch of tasks larger than the hardware thread count.

Section 6's offload model ships batches of thread contexts to each
processor.  When the batch exceeds the hardware thread count, a finished
thread immediately picks up the next queued task (the host pre-stages
contexts in the reserved region).  This is the steady-state regime behind
the paper's thread-scalability argument: a banked core is capped at its
banks and must rotate tasks through them (two-level scheduling), while
ViReC can simply raise the hardware thread count.

Implementation: :class:`TaskPool` holds the pending per-task initial
contexts; :func:`attach_pool` hooks a core so a HALTing thread is
re-dispatched with the next task instead of retiring.  On ViReC cores the
re-dispatch drops the dead task's registers from the tag store (their
values are no longer meaningful and must not be spilled).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..core.base import ThreadContext, ThreadState, TimelineCore
from ..errors import FunctionalCheckError, TaskPoolError


@dataclass
class Task:
    """One offloaded task: the initial register context for a kernel run."""

    init_regs: Dict
    entry_pc: int = 0


@dataclass
class TaskPool:
    """FIFO of pending tasks plus dispatch bookkeeping."""

    tasks: Deque[Task] = field(default_factory=deque)
    #: cycles between a thread halting and its next task being runnable
    #: (host notification + context staging)
    dispatch_latency: int = 30
    dispatched: int = 0
    #: tasks that ran to HALT on the attached core (initial + re-dispatched)
    completed: int = 0

    def __len__(self) -> int:
        return len(self.tasks)

    def pop(self) -> Optional[Task]:
        if self.tasks:
            self.dispatched += 1
            return self.tasks.popleft()
        return None

    def snapshot(self) -> Dict:
        """Structured queue state for error records and diagnostics."""
        return {"pending": len(self.tasks), "dispatched": self.dispatched,
                "completed": self.completed}

    @classmethod
    def from_instance(cls, instance, hw_threads: int,
                      dispatch_latency: int = 30) -> "TaskPool":
        """Build a pool from a workload instance generated with
        ``n_threads = total tasks``; the first ``hw_threads`` contexts seed
        the hardware threads, the rest queue here."""
        pending = [Task(init_regs=regs, entry_pc=instance.program.entry)
                   for regs in instance.init_regs[hw_threads:]]
        return cls(tasks=deque(pending), dispatch_latency=dispatch_latency)


def attach_pool(core: TimelineCore, pool: TaskPool) -> None:
    """Hook ``core`` so halting threads pull the next task from ``pool``."""
    drop_regs = getattr(core, "drop_thread_registers", None)  # ViReC cores

    def redispatch(thread: ThreadContext, t: int) -> bool:
        # peek-then-commit: install the new context first and only then pop
        # the task, so an exception mid-install (e.g. a fault escape during
        # the register drop/spill) leaves dispatched/queue state consistent
        if not pool.tasks:
            return False
        task = pool.tasks[0]
        if drop_regs is not None:
            drop_regs(thread)
        for reg, value in task.init_regs.items():
            thread.write(reg, value)
        thread.pc = task.entry_pc
        thread.state = ThreadState.BLOCKED
        thread.ready_at = t + pool.dispatch_latency
        thread.fruitless = 0
        pool.tasks.popleft()
        pool.dispatched += 1
        core.stats.inc("tasks_redispatched")
        return True

    def process(thread: ThreadContext) -> None:
        # call through _step_impl (not a captured binding) so instruments
        # attached after this wrapper still recompile the underlying step
        core._step_impl(thread)
        if thread.state == ThreadState.DONE:
            pool.completed += 1
            if redispatch(thread, core.commit_tail):
                # resurrect the thread for its next task
                core.stats.inc("threads_completed", -1)

    core._process_instruction = process

def run_taskpool(workload: str = "gather", core_type: str = "virec",
                 hw_threads: int = 8, n_tasks: int = 16,
                 n_per_task: int = 32, context_fraction: float = 0.8,
                 seed: int = 7, dispatch_latency: int = 30):
    """Run ``n_tasks`` kernel tasks over ``hw_threads`` hardware threads.

    Returns ``(stats, instance)``; the instance's checker verifies every
    task's output.  ``core_type`` is ``"virec"`` or ``"banked"`` (the two
    designs the thread-scalability argument compares).
    """
    from .. import workloads as wl
    from ..core.cgmt import BankedCore, make_threads
    from ..memory.hierarchy import NDPMemorySystem
    from ..stats.counters import Stats
    from ..virec import ViReCConfig, ViReCCore
    from .config import ndp_dcache, ndp_icache, table1_dram
    from .offload import offload_contexts

    instance = wl.get(workload).build(n_threads=n_tasks,
                                      n_per_thread=n_per_task, seed=seed)
    stats = Stats("taskpool")
    memsys = NDPMemorySystem(n_cores=1, dcache=ndp_dcache(),
                             icache=ndp_icache(), dram=table1_dram(),
                             stats=stats.child("mem"))
    ports = memsys.ports(0)
    layout = instance.layout()
    threads = make_threads(hw_threads, entry_pc=instance.program.entry,
                           init_regs=instance.init_regs[:hw_threads])
    offload_contexts(instance.memory, layout, threads,
                     instance.init_regs[:hw_threads])
    for th in threads:
        th.state = ThreadState.BLOCKED

    if core_type == "virec":
        rf = max(8, round(context_fraction * hw_threads
                          * len(instance.active_regs)))
        core = ViReCCore(instance.program, ports.icache, ports.dcache,
                         instance.memory, threads,
                         virec=ViReCConfig(rf_size=rf), layout=layout,
                         stats=stats.child("core"))
    elif core_type == "banked":
        core = BankedCore(instance.program, ports.icache, ports.dcache,
                          instance.memory, threads, layout=layout,
                          stats=stats.child("core"))
    else:
        raise ValueError(f"unsupported core type {core_type!r}")

    pool = TaskPool.from_instance(instance, hw_threads,
                                  dispatch_latency=dispatch_latency)
    attach_pool(core, pool)
    core.run()
    if not instance.check():
        raise FunctionalCheckError(
            f"task-pool run produced wrong results ({workload}/{core_type})",
        )
    if len(pool) or pool.completed != n_tasks:
        raise TaskPoolError(
            f"task pool did not drain: {pool.completed}/{n_tasks} tasks "
            f"completed, {len(pool)} still queued", snapshot=pool.snapshot())
    return stats.child("core"), instance
