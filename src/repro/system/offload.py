"""Task-level offload of thread contexts (Section 6 evaluation setup).

"Workloads originate on an OoO processor and are dispatched to one or more
near-data processors using a task-level offload mechanism, where workload
contexts are shipped through the crossbar and written to a reserved region
of memory per processor.  The near-memory processor is then notified and
will begin fetching the register contexts when the thread is scheduled."

This module performs both halves:

* functionally, the offloaded register values are written into the
  reserved context region of main memory (so a ViReC core's cold register
  fills would observe exactly these values);
* in timing, thread *i* becomes schedulable only after its context has been
  shipped — a configurable per-thread stagger models the host's serial
  dispatch through the crossbar.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.base import ThreadContext
from ..core.cgmt import ContextLayout
from ..isa.registers import Reg
from ..memory.main_memory import MainMemory


def offload_contexts(memory: MainMemory, layout: ContextLayout,
                     threads: List[ThreadContext],
                     init_regs: Optional[List[dict]] = None,
                     stagger: int = 20) -> None:
    """Ship each thread's initial context into the reserved region.

    ``init_regs[i]`` maps :class:`Reg` objects to initial values; the same
    values must already be present in the ``ThreadContext`` (the functional
    state) — this writes the memory image and sets arrival times.
    """
    for i, thread in enumerate(threads):
        regs = (init_regs[i] if init_regs and i < len(init_regs) else {})
        for reg, value in regs.items():
            addr = layout.reg_addr(thread.tid, reg.flat)
            memory.store(addr, value)
        # system-register line: pc and flags placeholder
        memory.store(layout.sysreg_addr(thread.tid), thread.pc)
        thread.ready_at = max(thread.ready_at, i * stagger)
