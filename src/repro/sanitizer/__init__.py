"""VSan: the shadow-state simulation sanitizer.

Runtime correctness tooling for the register-virtualization claim the whole
reproduction rests on: the VRMU register cache must stay coherent with the
architectural state it virtualizes.  A silent tag-store/CSL mismatch or a
mis-ordered LRC priority word would corrupt every headline figure without
failing a single performance test — VSan makes that class of bug loud.

One :class:`Sanitizer` per run owns a :class:`~repro.sanitizer.shadow.ShadowCore`
per simulated core (an independent architectural register file advanced by
the functional-simulator semantics at every commit) plus the structural
checks of :mod:`repro.sanitizer.checks` (tag-store bijection, priority-word
well-formedness, eviction ordering, rollback/CSL/BSI bookkeeping, pinned
backing-region bounds).  A failed check raises a cycle-stamped
:class:`~repro.errors.SanitizerViolation`.

Strictly opt-in via ``RunConfig(sanitize=...)`` — mirroring ``faults=`` and
``telemetry=`` — and purely observational: a sanitize-on run that finds no
violation is cycle-identical to a sanitize-off run (enforced by
tests/sanitizer/test_noop.py).  The fault-injection subsystem doubles as
VSan's own test oracle: bit flips injected under the unprotected scheme
*must* be caught (tests/sanitizer/test_detection.py).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SanitizerViolation
from ..isa.registers import from_flat
from .checks import (
    STRUCTURE_CHECKS,
    check_backing_bounds,
    check_bsi,
    check_policy,
    check_rollback,
    check_tagstore,
)
from .config import GRANULARITIES, SanitizeConfig
from .shadow import ShadowCore, ShadowThread

__all__ = ["CoreSanitizer", "GRANULARITIES", "STRUCTURE_CHECKS",
           "SanitizeConfig", "Sanitizer", "SanitizerViolation", "ShadowCore",
           "ShadowThread", "check_backing_bounds", "check_bsi",
           "check_policy", "check_rollback", "check_tagstore"]


class CoreSanitizer:
    """Per-core hook object installed at ``core.sanitizer``.

    The timeline engine calls :meth:`on_commit` once per committed
    instruction (guarded on the attribute being non-None, like
    ``fault_hook`` and ``telemetry``).  All work happens here; the core
    never sees a return value, so the sanitizer cannot perturb timing.
    """

    def __init__(self, session: "Sanitizer", core: object,
                 shadow: Optional[ShadowCore]) -> None:
        self.session = session
        self.core = core
        self.shadow = shadow
        self.cfg = session.config
        self._next_check = (self.cfg.interval
                            if self.cfg.granularity == "interval" else 0)
        # per-commit sweeps cover the registers this workload can ever
        # touch (every VRMU slot tags one of them); the run-end sweep in
        # finalize() still covers the full architectural register file
        layout = getattr(core, "layout", None)
        used = getattr(layout, "used_regs", None) if layout is not None \
            else None
        self._sweep_regs = (tuple(from_flat(f) for f in used)
                            if used else None)

    def on_commit(self, thread: object, inst: object, result: object,
                  t_commit: int) -> None:
        """Advance the shadow and run checks per the configured granularity."""
        cfg = self.cfg
        per_commit = cfg.granularity == "commit"
        if self.shadow is not None:
            violation = self.shadow.step_commit(thread, inst, result,
                                                t_commit, check_now=per_commit)
            if per_commit and violation is not None:
                raise violation
        if per_commit:
            self.check(t_commit)
        elif cfg.granularity == "interval" and t_commit >= self._next_check:
            self._next_check = t_commit + cfg.interval
            self.check(t_commit)

    def check(self, cycle: int, full: bool = False) -> None:
        """Shadow sweep over every thread + structural checks.

        ``full`` widens the sweep from the workload's used registers to
        the entire architectural register file (the run-end setting).
        """
        if self.shadow is not None:
            regs = None if full else self._sweep_regs
            violation = self.shadow.check_all(self.core.threads, cycle,
                                              regs=regs)
            if violation is not None:
                raise violation
        self._check_structures(cycle)

    def _check_structures(self, cycle: int) -> None:
        if self.cfg.structures:
            for fn in STRUCTURE_CHECKS:
                violation = fn(self.core, cycle)
                if violation is not None:
                    raise violation
        if self.cfg.backing_bounds:
            violation = check_backing_bounds(self.core, cycle)
            if violation is not None:
                raise violation


class Sanitizer:
    """All VSan state of one simulation run (one per ``run_config`` call)."""

    def __init__(self, config: Optional[SanitizeConfig] = None) -> None:
        self.config = config or SanitizeConfig()
        self.cores: List[CoreSanitizer] = []

    # -- wiring ------------------------------------------------------------
    def attach(self, core: object, memory: object) -> CoreSanitizer:
        """Wire one core's opt-in sanitizer hook to this session.

        ``memory`` is the core's (per-instance) functional main memory —
        the shadow reads load values and verifies store values through it.
        """
        shadow = (ShadowCore(core.core_id, core.threads, memory)
                  if self.config.shadow else None)
        cs = CoreSanitizer(self, core, shadow)
        core.sanitizer = cs
        self.cores.append(cs)
        return cs

    # -- run-end ------------------------------------------------------------
    def finalize(self, cycle: int) -> None:
        """Run-end sweep (the only check point at ``granularity="run"``)."""
        for cs in self.cores:
            cs.check(cycle, full=True)

    # -- reporting ----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Shadow bookkeeping counters (diagnostics; not part of Stats)."""
        commits = sum(cs.shadow.commits for cs in self.cores
                      if cs.shadow is not None)
        frozen = sum(1 for cs in self.cores if cs.shadow is not None
                     for sh in cs.shadow.shadows.values() if sh.frozen)
        return {"shadow_commits": commits, "frozen_threads": frozen,
                "cores": len(self.cores)}


# -- driver wiring (self-registration into the system plugin registry) ----
from ..system.plugins import SubsystemPlugin, register as _register_plugin


def _plugin_enabled(cfg) -> bool:
    return (cfg.sanitize is not None
            and SanitizeConfig.from_spec(cfg.sanitize).enabled)


def _plugin_wire(cfg, node, instances):
    """Attach a VSan Sanitizer when the config asks for one.

    Strictly opt-in, and purely observational when on: a sanitize-on run
    that raises no violation is cycle-identical to a sanitize-off run
    (enforced by tests/sanitizer/test_noop.py).  Wired *after* fault
    injection (plugin order) so injected corruption is visible to the
    shadow checks — the fault subsystem doubles as VSan's test oracle.
    """
    if not _plugin_enabled(cfg):
        return None
    vsan = Sanitizer(SanitizeConfig.from_spec(cfg.sanitize))
    for core, inst in zip(node.cores, instances):
        vsan.attach(core, inst.memory)
    return vsan


#: the run-end sweep happens inside the simulate phase (it can raise
#: SanitizerViolation, which is a simulation outcome, not a driver bug)
PLUGIN = _register_plugin(SubsystemPlugin(
    name="sanitizer",
    enabled=_plugin_enabled,
    wire=_plugin_wire,
    finalize_simulate=lambda vsan, result: vsan.finalize(result.cycles),
    ooo_error=("the sanitizer is not modelled for the ooo host core "
               "(it does not run on the timeline engine)"),
    order=30,
))
