"""Shadow architectural register file (VSan's ground truth).

One :class:`ShadowCore` per simulated core maintains an independent copy of
every thread's architectural state — registers, flags, pc — advanced by the
*functional* instruction semantics (:func:`repro.isa.instructions.evaluate`,
the same golden model :mod:`repro.isa.func_sim` uses) at every timing-model
commit.  Because the timeline engine commits in program order per thread and
performs functional execution at commit, a healthy simulation keeps the two
copies bit-identical; any divergence means timing-model state was corrupted
(an injected soft error, or a register-virtualization bug that let a stale
or mis-mapped value commit).

Comparisons are bit-exact: float values are compared by their IEEE-754
pattern, so a sign flip on ``0.0`` or a NaN-payload flip cannot hide behind
Python's ``==``.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..core.base import ThreadContext
from ..errors import SanitizerViolation
from ..isa.instructions import Instruction, evaluate
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS, D, Reg, RegClass, X
from ..memory.main_memory import MainMemory


def _bits(value: object) -> int:
    """Canonical 64-bit pattern of a register value (int or float)."""
    if isinstance(value, float):
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    return int(value) & ((1 << 64) - 1)


def _fmt(value: object) -> str:
    return f"{value!r} (0x{_bits(value):016x})"


class ShadowThread:
    """Shadow architectural state of one hardware thread."""

    def __init__(self, thread: ThreadContext) -> None:
        self.tid = thread.tid
        self.pc = thread.pc
        self.xregs: List[int] = list(thread.xregs)
        self.dregs: List[float] = list(thread.dregs)
        self.flags = thread.flags.copy()
        self.halted = False
        #: set on control-flow divergence: the shadow can no longer follow
        #: the timing model's instruction stream, so it freezes at the
        #: divergence point instead of absorbing wrong-path state
        self.frozen = False
        self.commits = 0

    def read(self, reg: Reg) -> object:
        if reg.rclass == RegClass.X:
            return self.xregs[reg.index]
        return self.dregs[reg.index]

    def write(self, reg: Reg, value: object) -> None:
        if reg.rclass == RegClass.X:
            self.xregs[reg.index] = int(value) & ((1 << 64) - 1)
        else:
            self.dregs[reg.index] = float(value)


class ShadowCore:
    """Per-core shadow register file + commit-time functional replay."""

    def __init__(self, core_id: int, threads: List[ThreadContext],
                 memory: MainMemory) -> None:
        self.core_id = core_id
        self.memory = memory
        self.shadows: Dict[int, ShadowThread] = {
            th.tid: ShadowThread(th) for th in threads}
        #: first divergence seen while checks were deferred (interval/run
        #: granularity); raised at the next check boundary
        self.pending: Optional[SanitizerViolation] = None
        self.commits = 0

    # -- violation plumbing -------------------------------------------------
    def _violation(self, invariant: str, message: str, cycle: int,
                   details: Dict) -> SanitizerViolation:
        return SanitizerViolation(message, invariant=invariant, cycle=cycle,
                                  core_id=self.core_id, details=details)

    def _defer(self, violation: SanitizerViolation) -> None:
        if self.pending is None:
            self.pending = violation

    # -- commit-time shadow stepping ---------------------------------------
    def step_commit(self, thread: ThreadContext, inst: Instruction,
                    result: object, t_commit: int,
                    check_now: bool) -> Optional[SanitizerViolation]:
        """Advance ``thread``'s shadow past one committed instruction.

        ``result`` is the timing model's :class:`ExecResult` (used only for
        cross-checking — the shadow recomputes everything from its own
        state).  When ``check_now`` the divergence checks run inline and the
        first violation is returned; otherwise divergences are recorded and
        surfaced at the next check boundary.  Never raises and never writes
        simulator state: VSan is purely observational.
        """
        sh = self.shadows.get(thread.tid)
        if sh is None or sh.frozen or sh.halted:
            return self.pending if check_now else None
        self.commits += 1
        sh.commits += 1

        # control-flow integrity: the committed pc must be exactly where
        # the shadow's functional execution says this thread is
        if thread.pc != sh.pc:
            sh.frozen = True
            v = self._violation(
                "shadow.pc",
                f"thread {thread.tid} committed pc {thread.pc} but shadow "
                f"expects pc {sh.pc}", t_commit,
                {"tid": thread.tid, "pc": thread.pc, "shadow_pc": sh.pc,
                 "inst": repr(inst)})
            self._defer(v)
            return v if check_now else None

        srcvals = {r: sh.read(r) for r in inst.srcs}
        shadow_res = evaluate(inst, srcvals, sh.flags, sh.pc)

        for reg, value in shadow_res.writes.items():
            sh.write(reg, value)
        if inst.is_load and shadow_res.addr is not None:
            sh.write(inst.rd, self.memory.load(shadow_res.addr))
        if shadow_res.new_flags is not None:
            sh.flags = shadow_res.new_flags

        violation: Optional[SanitizerViolation] = None
        if inst.is_store and shadow_res.addr is not None:
            stored = self.memory.load(shadow_res.addr)
            if _bits(stored) != _bits(shadow_res.store_value):
                violation = self._violation(
                    "shadow.store",
                    f"thread {thread.tid} stored {_fmt(stored)} at "
                    f"0x{shadow_res.addr:x} but shadow computed "
                    f"{_fmt(shadow_res.store_value)}", t_commit,
                    {"tid": thread.tid, "addr": shadow_res.addr,
                     "inst": repr(inst)})
                self._defer(violation)

        if shadow_res.halt:
            sh.halted = True
        else:
            sh.pc = (shadow_res.target if shadow_res.taken else sh.pc + 1)

        if violation is None:
            violation = self.check_thread(thread, t_commit,
                                          regs=inst.regs) or self.pending
        if check_now:
            return violation
        return None

    # -- state comparison ---------------------------------------------------
    def check_thread(self, thread: ThreadContext, cycle: int,
                     regs: Optional[Tuple[Reg, ...]] = None,
                     ) -> Optional[SanitizerViolation]:
        """Compare one thread's registers (all, or just ``regs``) + flags."""
        sh = self.shadows.get(thread.tid)
        if sh is None or sh.frozen:
            return None
        if regs is None:
            regs = tuple(X(i) for i in range(NUM_INT_REGS)) + \
                tuple(D(i) for i in range(NUM_FP_REGS))
        for reg in regs:
            have, want = thread.read(reg), sh.read(reg)
            if _bits(have) != _bits(want):
                v = self._violation(
                    "shadow.reg",
                    f"thread {thread.tid} register {reg.name} holds "
                    f"{_fmt(have)} but shadow has {_fmt(want)}", cycle,
                    {"tid": thread.tid, "reg": reg.name, "flat": reg.flat,
                     "value": repr(have), "shadow": repr(want)})
                self._defer(v)
                return v
        tf, sf = thread.flags, sh.flags
        if (tf.n, tf.z, tf.c, tf.v) != (sf.n, sf.z, sf.c, sf.v):
            v = self._violation(
                "shadow.flags",
                f"thread {thread.tid} flags NZCV="
                f"{int(tf.n)}{int(tf.z)}{int(tf.c)}{int(tf.v)} but shadow "
                f"has {int(sf.n)}{int(sf.z)}{int(sf.c)}{int(sf.v)}", cycle,
                {"tid": thread.tid})
            self._defer(v)
            return v
        return None

    def check_all(self, threads: List[ThreadContext], cycle: int,
                  regs: Optional[Tuple[Reg, ...]] = None,
                  ) -> Optional[SanitizerViolation]:
        """Sweep every thread (``regs`` subset, or all 64) against shadow."""
        if self.pending is not None:
            return self.pending
        for th in threads:
            v = self.check_thread(th, cycle, regs=regs)
            if v is not None:
                return v
        return None
