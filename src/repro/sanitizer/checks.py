"""Structural invariant checks over the VRMU / BSI / CSL state.

Each function inspects one structure family and returns the first
:class:`~repro.errors.SanitizerViolation` found (or ``None``), so the
:class:`~repro.sanitizer.Sanitizer` can compose them at any granularity.
All checks are read-only.

Invariant taxonomy (ids appear in the raised violation and in
``docs/correctness.md``):

``tagstore.bijection``
    The (thread, arch-reg) -> physical-slot map and the per-slot tag arrays
    must describe the same bijection: no dangling mappings, no duplicate
    slots, tags matching the map, and a valid count equal to the map size.
``policy.word``
    LRC/MRT priority-word well-formedness: T in [0, 7], C in {0, 1}, A in
    [0, 7] on every valid slot (3/1/3-bit hardware fields, Section 5.1).
``policy.order``
    Eviction-order consistency: the victim the policy selects over the
    currently evictable slots must carry the maximum eviction priority.
``rollback.depth`` / ``rollback.slots``
    The rollback queue never exceeds its depth and only references
    physical slots that exist.
``bsi.bookkeeping``
    BSI/CSL bookkeeping: the busy-until horizon and sysreg ping-pong
    buffer entries must be sane (non-negative cycles, known thread ids).
``backing.bounds``
    The reserved dcache backing region exactly covers the context layout,
    and every architectural register of every thread maps inside it
    (spills can never escape the pinned region).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SanitizerViolation
from ..virec.policies import A_MAX, T_MAX


def _v(invariant: str, message: str, cycle: int, core_id: int,
       **details: object) -> SanitizerViolation:
    return SanitizerViolation(message, invariant=invariant, cycle=cycle,
                              core_id=core_id, details=details)


def check_tagstore(core, cycle: int) -> Optional[SanitizerViolation]:
    """Tag-store <-> physical-RF bijection (no duplicates, no danglers)."""
    vrmu = getattr(core, "vrmu", None)
    if vrmu is None:
        return None
    ts = vrmu.tagstore
    cid = core.core_id
    mapped = len(ts._map)
    valid = int(ts.valid.sum())
    if mapped != valid:
        return _v("tagstore.bijection",
                  f"{mapped} mapped registers but {valid} valid slots",
                  cycle, cid, mapped=mapped, valid=valid)
    seen_slots = set()
    for (tid, areg), slot in ts._map.items():
        if not 0 <= slot < ts.capacity:
            return _v("tagstore.bijection",
                      f"mapping ({tid}, {areg}) points at slot {slot} "
                      f"outside capacity {ts.capacity}", cycle, cid,
                      tid=tid, areg=areg, slot=slot)
        if not ts.valid[slot]:
            return _v("tagstore.bijection",
                      f"mapping ({tid}, {areg}) points at invalid slot "
                      f"{slot} (dangling)", cycle, cid,
                      tid=tid, areg=areg, slot=slot)
        if int(ts.owner[slot]) != tid or int(ts.areg[slot]) != areg:
            return _v("tagstore.bijection",
                      f"slot {slot} tags ({int(ts.owner[slot])}, "
                      f"{int(ts.areg[slot])}) disagree with map entry "
                      f"({tid}, {areg})", cycle, cid,
                      tid=tid, areg=areg, slot=slot)
        if slot in seen_slots:
            return _v("tagstore.bijection",
                      f"two mappings share physical slot {slot}", cycle,
                      cid, slot=slot)
        seen_slots.add(slot)
    return None


def check_policy(core, cycle: int) -> Optional[SanitizerViolation]:
    """Priority-word well-formedness + eviction-order consistency."""
    vrmu = getattr(core, "vrmu", None)
    if vrmu is None:
        return None
    ts = vrmu.tagstore
    pol = ts.policy
    cid = core.core_id
    for slot in map(int, ts.valid_slots()):
        t_bits, c_bit, a_bits = (int(pol.T[slot]), int(pol.C[slot]),
                                 int(pol.A[slot]))
        d_bit = int(pol.D[slot])
        if not (0 <= t_bits <= T_MAX and c_bit in (0, 1)
                and 0 <= a_bits <= A_MAX and d_bit in (0, 1)):
            return _v("policy.word",
                      f"slot {slot} priority word out of range: "
                      f"T={t_bits} C={c_bit} A={a_bits} D={d_bit} "
                      f"(need T<={T_MAX}, C in 0/1, A<={A_MAX}, D in 0/1)",
                      cycle, cid, slot=slot, T=t_bits, C=c_bit, A=a_bits,
                      D=d_bit)
    # eviction-order consistency: whoever the policy would evict right now
    # must carry the maximum priority among the evictable candidates.
    # Only the pure argmax policies are probed (the dead-hint variants
    # stay argmax — D just tops the priority word) — SRRIP ages entries
    # and random replacement draws from its PRNG inside select_victim, so
    # calling it here would perturb future victim choices.
    if pol.name not in ("plru", "lru", "mrt-plru", "mrt-lru", "lrc",
                        "dead-first", "dead-elide"):
        return None
    candidates = ts.valid & (ts.fill_ready <= getattr(core, "now", cycle))
    if candidates.any():
        prio = pol.priority()
        victim = pol.select_victim(candidates.copy())
        if victim is None:
            return _v("policy.order",
                      "policy returned no victim over a non-empty "
                      "candidate set", cycle, cid)
        best = int(prio[candidates].max())
        if int(prio[victim]) != best:
            return _v("policy.order",
                      f"policy picked slot {victim} (priority "
                      f"{int(prio[victim])}) but the maximum evictable "
                      f"priority is {best}", cycle, cid,
                      victim=victim, victim_priority=int(prio[victim]),
                      max_priority=best)
    return None


def check_rollback(core, cycle: int) -> Optional[SanitizerViolation]:
    """Rollback-queue depth bound + slot-range consistency."""
    vrmu = getattr(core, "vrmu", None)
    if vrmu is None:
        return None
    rb = vrmu.rollback
    cid = core.core_id
    if len(rb) > rb.depth:
        return _v("rollback.depth",
                  f"rollback queue holds {len(rb)} entries but depth is "
                  f"{rb.depth}", cycle, cid, entries=len(rb), depth=rb.depth)
    capacity = vrmu.tagstore.capacity
    for entry in rb._queue:
        for slot in entry.slots:
            if not 0 <= slot < capacity:
                return _v("rollback.slots",
                          f"rollback entry references slot {slot} outside "
                          f"capacity {capacity}", cycle, cid,
                          slot=slot, capacity=capacity)
    return None


def check_bsi(core, cycle: int) -> Optional[SanitizerViolation]:
    """CSL/BSI bookkeeping: busy horizon and sysreg buffer sanity."""
    bsi = getattr(core, "bsi", None)
    cid = core.core_id
    if bsi is not None and bsi.busy_until < 0:
        return _v("bsi.bookkeeping",
                  f"BSI busy_until is negative ({bsi.busy_until})",
                  cycle, cid, busy_until=bsi.busy_until)
    sysregs = getattr(core, "sysregs", None)
    if sysregs is not None:
        valid_tids = {th.tid for th in core.threads}
        for tid, ready in sysregs._ready.items():
            if tid not in valid_tids:
                return _v("bsi.bookkeeping",
                          f"sysreg buffer prefetched unknown thread {tid}",
                          cycle, cid, tid=tid)
            if ready < 0:
                return _v("bsi.bookkeeping",
                          f"sysreg prefetch for thread {tid} completes at "
                          f"negative cycle {ready}", cycle, cid,
                          tid=tid, ready=ready)
    return None


def check_backing_bounds(core, cycle: int) -> Optional[SanitizerViolation]:
    """Pinned backing-region bounds: register traffic cannot escape it."""
    layout = getattr(core, "layout", None)
    if layout is None or getattr(core, "bsi", None) is None:
        return None
    cid = core.core_id
    lo, hi = layout.region(len(core.threads))
    region = getattr(core.dcache, "register_region", None)
    if region is None:
        return _v("backing.bounds",
                  "core has a BSI but the dcache has no reserved register "
                  "region", cycle, cid)
    if tuple(region) != (lo, hi):
        return _v("backing.bounds",
                  f"dcache register region {tuple(region)} disagrees with "
                  f"the context layout region ({lo}, {hi})", cycle, cid,
                  dcache_region=tuple(region), layout_region=(lo, hi))
    for th in core.threads:
        for flat in layout.used_regs:
            addr = layout.reg_addr(th.tid, flat)
            if not lo <= addr < hi:
                return _v("backing.bounds",
                          f"register {flat} of thread {th.tid} maps to "
                          f"0x{addr:x} outside the pinned region "
                          f"[0x{lo:x}, 0x{hi:x})", cycle, cid,
                          tid=th.tid, flat=flat, addr=addr)
        sysaddr = layout.sysreg_addr(th.tid)
        if not lo <= sysaddr < hi:
            return _v("backing.bounds",
                      f"sysreg line of thread {th.tid} maps to "
                      f"0x{sysaddr:x} outside the pinned region",
                      cycle, cid, tid=th.tid, addr=sysaddr)
    return None


STRUCTURE_CHECKS = (check_tagstore, check_policy, check_rollback, check_bsi)
