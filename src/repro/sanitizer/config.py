"""Sanitizer campaign description (safe to embed in a RunConfig).

Mirrors the fault/telemetry opt-in discipline: ``RunConfig(sanitize=...)``
takes a :class:`SanitizeConfig` (or a dict of its fields), and with the
field left ``None`` nothing is wired — runs are bit-identical to a build
without this package.  Even with the sanitizer *on*, every check is purely
observational: VSan reads simulator state but never alters a timestamp, so
a sanitize-on run that finds nothing produces exactly the same cycle
counts as a sanitize-off run (enforced by tests/sanitizer/test_noop.py).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

#: when structural/full-state checks run: after every committed
#: instruction, every ``interval`` simulated cycles, or once at run end
GRANULARITIES = ("commit", "interval", "run")


@dataclass(frozen=True)
class SanitizeConfig:
    """Which invariants to verify, and how often."""

    #: check granularity: ``"commit"`` (full check after every committed
    #: instruction), ``"interval"`` (every :attr:`interval` cycles), or
    #: ``"run"`` (once, at the end of the run)
    granularity: str = "commit"
    #: cycles between checks when ``granularity == "interval"``
    interval: int = 1000
    #: maintain a shadow architectural register file (driven by the
    #: functional-simulator semantics) and compare the timing model's
    #: committed register/flag/pc/memory state against it
    shadow: bool = True
    #: verify VRMU structures: tag-store <-> physical-RF bijection, LRC
    #: T/C/A priority-word well-formedness, eviction-order consistency,
    #: rollback-queue bounds, CSL/BSI bookkeeping (no-op on cores
    #: without a VRMU)
    structures: bool = True
    #: verify that all BSI fill/spill/sysreg traffic stays inside the
    #: pinned dcache backing region reserved for register state
    backing_bounds: bool = True

    def __post_init__(self) -> None:
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown sanitize granularity {self.granularity!r}; "
                f"use {GRANULARITIES}")
        if self.interval < 1:
            raise ValueError("sanitize interval must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any invariant family would actually be checked."""
        return bool(self.shadow or self.structures or self.backing_bounds)

    @classmethod
    def from_spec(cls, spec: object) -> "SanitizeConfig":
        """Build from a SanitizeConfig, a dict of its fields, True, or None."""
        if spec is None:
            return cls(shadow=False, structures=False, backing_bounds=False)
        if spec is True:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            known = {f.name for f in fields(cls)}
            unknown = set(spec) - known
            if unknown:
                raise ValueError(
                    f"unknown sanitize field(s) {sorted(unknown)}; "
                    f"choose from {sorted(known)}")
            return cls(**spec)
        raise TypeError(f"sanitize spec must be a SanitizeConfig, dict, "
                        f"True, or None, not {type(spec).__name__}")

    def with_(self, **kw: object) -> "SanitizeConfig":
        return replace(self, **kw)
