"""System crossbar connecting near-memory processors to the memory controller.

The paper attaches each NDP "to the system crossbar near the memory
controller" (Section 6).  The crossbar adds a fixed traversal latency and
serializes requests on a shared issue port, which is what creates the
observed-latency growth with system activity in Figure 11.
"""

from __future__ import annotations

from ..stats.counters import Stats


class Crossbar:
    """Fixed-latency, bandwidth-limited interconnect in front of ``next_level``."""

    def __init__(self, next_level, latency: int = 6, requests_per_cycle: int = 1,
                 stats: Stats | None = None) -> None:
        self.next_level = next_level
        self.latency = latency
        self.requests_per_cycle = requests_per_cycle
        self.stats = stats if stats is not None else Stats("crossbar")
        self._slot_free = 0  # next cycle with an available issue slot
        self._slots_used = 0

    def access(self, now: int, line_addr: int, is_write: bool = False,
               requestor: int = 0) -> int:
        """Forward one line request; returns the downstream completion cycle."""
        start = max(now, self._slot_free)
        self._slots_used += 1
        if self._slots_used >= self.requests_per_cycle:
            self._slot_free = start + 1
            self._slots_used = 0
        queued = start - now
        if queued:
            self.stats.inc("queue_cycles", queued)
        self.stats.inc("requests")
        return self.next_level.access(start + self.latency, line_addr,
                                      is_write=is_write, requestor=requestor)
