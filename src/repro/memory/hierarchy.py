"""Memory-hierarchy wiring per Table 1.

Two stack shapes are used in the paper's evaluation:

* **Near-memory processors** — per-core 32 kB L1I and 8 kB L1D, connected
  through the system crossbar directly to DRAM (no L2, Section 6).
* **Out-of-order host** — 64 kB L1I and 32 kB L1D backed by a 1 MB L2 with a
  degree-8 stride prefetcher, then DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..stats.counters import Stats
from .cache import Cache, CacheConfig
from .crossbar import Crossbar
from .dram import DRAM, DRAMConfig
from .prefetcher import StridePrefetcher


@dataclass
class CoreMemPorts:
    """The caches one core talks to."""

    icache: Cache
    dcache: Cache


class NDPMemorySystem:
    """Shared DRAM + crossbar with per-core L1 caches for N near-memory cores."""

    def __init__(self, n_cores: int = 1, *,
                 dcache: Optional[CacheConfig] = None,
                 icache: Optional[CacheConfig] = None,
                 dram: Optional[DRAMConfig] = None,
                 crossbar_latency: int = 6,
                 stats: Optional[Stats] = None) -> None:
        self.stats = stats if stats is not None else Stats("memsys")
        self.dram = DRAM(dram or DRAMConfig(), self.stats.child("dram"))
        self.crossbar = Crossbar(self.dram, latency=crossbar_latency,
                                 stats=self.stats.child("crossbar"))
        self.cores: List[CoreMemPorts] = []
        for i in range(n_cores):
            dc = Cache(dcache or CacheConfig(name=f"dcache{i}", size_bytes=8 * 1024,
                                             assoc=4, latency=2, mshrs=24),
                       self.crossbar, self.stats.child(f"dcache{i}"))
            ic = Cache(icache or CacheConfig(name=f"icache{i}", size_bytes=32 * 1024,
                                             assoc=4, latency=2, mshrs=4),
                       self.crossbar, self.stats.child(f"icache{i}"))
            self.cores.append(CoreMemPorts(icache=ic, dcache=dc))

    def ports(self, core: int) -> CoreMemPorts:
        return self.cores[core]


class HostMemorySystem:
    """OoO-host stack: L1I/L1D -> L2 (stride prefetcher) -> DRAM."""

    def __init__(self, *, dram: Optional[DRAMConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        self.stats = stats if stats is not None else Stats("hostmem")
        self.dram = DRAM(dram or DRAMConfig(), self.stats.child("dram"))
        self.l2 = Cache(
            CacheConfig(name="l2", size_bytes=1024 * 1024, assoc=8, latency=12, mshrs=64),
            self.dram, self.stats.child("l2"),
            prefetcher=StridePrefetcher(degree=8, stats=self.stats.child("l2pf")),
        )
        self.dcache = Cache(
            CacheConfig(name="dcache", size_bytes=32 * 1024, assoc=4, latency=4, mshrs=32),
            self.l2, self.stats.child("dcache"))
        self.icache = Cache(
            CacheConfig(name="icache", size_bytes=64 * 1024, assoc=4, latency=2, mshrs=4),
            self.l2, self.stats.child("icache"))

    def ports(self, core: int = 0) -> CoreMemPorts:
        return CoreMemPorts(icache=self.icache, dcache=self.dcache)
