"""Functional main-memory data storage.

All architectural memory traffic in this model is 64-bit-word granular
(Section 5.3 stores eight registers per 64-byte line), so the functional
image is a sparse word store.  Values are Python objects — unsigned 64-bit
ints for integer data, floats for FP data — which keeps the golden model
exact without bit-pattern conversions.  Timing is handled separately by the
cache/DRAM models; this class is purely the *contents*.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

import numpy as np

Word = Union[int, float]

LINE_BYTES = 64
WORD_BYTES = 8
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


class AlignmentError(ValueError):
    """Raised when an access is not 8-byte aligned."""


class MainMemory:
    """Sparse, word-addressable functional memory image."""

    def __init__(self) -> None:
        self._words: Dict[int, Word] = {}

    @staticmethod
    def _index(addr: int) -> int:
        if addr % WORD_BYTES:
            raise AlignmentError(f"unaligned 8-byte access at {addr:#x}")
        return addr // WORD_BYTES

    def load(self, addr: int) -> Word:
        """Read the 64-bit word at byte address ``addr`` (0 if untouched)."""
        return self._words.get(self._index(addr), 0)

    def store(self, addr: int, value: Word) -> None:
        """Write the 64-bit word at byte address ``addr``."""
        self._words[self._index(addr)] = value

    def write_array(self, addr: int, values: Iterable[Word]) -> int:
        """Bulk-write ``values`` starting at ``addr``; returns end address."""
        idx = self._index(addr)
        count = 0
        for offset, value in enumerate(values):
            v = value
            if isinstance(v, (np.integer,)):
                v = int(v)
            elif isinstance(v, (np.floating,)):
                v = float(v)
            self._words[idx + offset] = v
            count = offset + 1
        return addr + WORD_BYTES * count

    def read_array(self, addr: int, count: int) -> list:
        """Bulk-read ``count`` words starting at ``addr``."""
        idx = self._index(addr)
        return [self._words.get(idx + i, 0) for i in range(count)]

    def footprint_words(self) -> int:
        """Number of words ever touched (for tests/diagnostics)."""
        return len(self._words)

    def copy(self) -> "MainMemory":
        """Independent snapshot of the current contents.

        Used by golden-model checkers that must replay a program against
        the *pristine* pre-run image while the simulator mutates the
        original (e.g. the race-aware fuzz checker).
        """
        new = MainMemory()
        new._words = dict(self._words)
        return new


def line_address(addr: int) -> int:
    """Byte address of the 64-byte line containing ``addr``."""
    return addr & ~(LINE_BYTES - 1)
