"""DDR5-like DRAM timing model.

Models the DDR5_6400 configuration from Table 1 (1 rank, 2 channels,
tRP-tCL-tRCD = 14-14-14) at the granularity that matters for the paper's
workloads: row-buffer hits vs misses, bank-level parallelism, and per-channel
data-bus serialization.  All times are in *core* cycles of the 1 GHz
near-memory processors, so tRP=tCL=tRCD=14 cycles.

The model is reservation-based rather than ticked: a request presented at
cycle ``now`` computes its completion time from the addressed bank's state
and the channel bus queue, then reserves those resources.  This captures
contention between multiple processors (Figure 11) without a per-cycle DRAM
state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..stats.counters import Stats
from .main_memory import LINE_BYTES


@dataclass
class DRAMConfig:
    """Timing/geometry parameters (defaults = Table 1, cycles @ 1 GHz)."""

    channels: int = 2
    banks_per_channel: int = 16
    t_rp: int = 14     # precharge
    t_rcd: int = 14    # activate (row to column delay)
    t_cl: int = 14     # CAS latency
    t_burst: int = 2   # 64B transfer on the channel bus
    row_bytes: int = 4096
    #: fixed controller/queueing overhead per request
    t_controller: int = 4


@dataclass
class _Bank:
    open_row: int = -1
    ready_at: int = 0


class DRAM:
    """Open-page DRAM with per-bank row state and per-channel bus."""

    def __init__(self, config: DRAMConfig | None = None, stats: Stats | None = None) -> None:
        self.config = config or DRAMConfig()
        self.stats = stats if stats is not None else Stats("dram")
        self._banks: Dict[Tuple[int, int], _Bank] = {}
        self._bus_free: Dict[int, int] = {c: 0 for c in range(self.config.channels)}

    # -- address mapping ----------------------------------------------------
    def map_address(self, line_addr: int) -> Tuple[int, int, int]:
        """Map a line address to ``(channel, bank, row)``.

        Consecutive lines interleave across channels then banks, which gives
        streaming workloads bank-level parallelism (as a real controller's
        XOR-interleaved mapping would).
        """
        cfg = self.config
        line = line_addr // LINE_BYTES
        channel = line % cfg.channels
        line //= cfg.channels
        bank = line % cfg.banks_per_channel
        line //= cfg.banks_per_channel
        row = line // (cfg.row_bytes // LINE_BYTES)
        return channel, bank, row

    def _bank(self, channel: int, bank: int) -> _Bank:
        key = (channel, bank)
        if key not in self._banks:
            self._banks[key] = _Bank()
        return self._banks[key]

    # -- access ---------------------------------------------------------------
    def access(self, now: int, line_addr: int, is_write: bool = False,
               requestor: int = 0) -> int:
        """Service one line request presented at cycle ``now``.

        Returns the cycle at which the line's data is available at the DRAM
        pins (reads) or accepted (writes).  Bank and bus reservations are
        updated so later requests observe the contention.
        """
        cfg = self.config
        channel, bank_idx, row = self.map_address(line_addr)
        bank = self._bank(channel, bank_idx)

        start = max(now + cfg.t_controller, bank.ready_at)
        if bank.open_row == row:
            access_lat = cfg.t_cl
            self.stats.inc("row_hits")
        elif bank.open_row < 0:
            access_lat = cfg.t_rcd + cfg.t_cl
            self.stats.inc("row_empty")
        else:
            access_lat = cfg.t_rp + cfg.t_rcd + cfg.t_cl
            self.stats.inc("row_misses")
        bank.open_row = row

        data_ready = start + access_lat
        transfer_start = max(data_ready, self._bus_free[channel])
        complete = transfer_start + cfg.t_burst
        self._bus_free[channel] = complete
        bank.ready_at = complete

        self.stats.inc("writes" if is_write else "reads")
        self.stats.inc("busy_cycles", complete - start)
        return complete

    def min_latency(self) -> int:
        """Best-case (row hit, idle) latency, used by tests and docs."""
        cfg = self.config
        return cfg.t_controller + cfg.t_cl + cfg.t_burst


def hbm_like_config() -> DRAMConfig:
    """HBM-class stack preset: many narrow channels, shorter queues.

    Near-memory proposals often sit on HBM-style stacks rather than DDR5
    DIMMs; this preset (8 channels x 8 banks, slightly longer CAS, faster
    burst) lets the sensitivity experiments ask how ViReC's conclusions
    move with the memory technology.
    """
    return DRAMConfig(channels=8, banks_per_channel=8,
                      t_rp=16, t_rcd=16, t_cl=16, t_burst=1,
                      row_bytes=2048, t_controller=3)
