"""Stride prefetcher (Table 1: L2 stride prefetcher, degree 8).

Watches the demand-miss stream per requestor, detects a repeating line-level
stride after two confirmations, and issues ``degree`` prefetch fills ahead of
the stream.  Used by the out-of-order host configuration; the near-memory
processors have no L2 (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..stats.counters import Stats


@dataclass
class _StreamState:
    last_addr: int = -1
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-requestor stride detection with configurable degree."""

    def __init__(self, degree: int = 8, stats: Stats | None = None) -> None:
        self.degree = degree
        self.stats = stats if stats is not None else Stats("prefetcher")
        self._streams: Dict[int, _StreamState] = {}

    def observe_miss(self, cache, now: int, line_addr: int, requestor: int) -> None:
        """Called by the owning cache on every demand miss."""
        st = self._streams.setdefault(requestor, _StreamState())
        if st.last_addr >= 0:
            stride = line_addr - st.last_addr
            if stride != 0 and stride == st.stride:
                st.confidence = min(st.confidence + 1, 3)
            else:
                st.stride = stride
                st.confidence = 1 if stride else 0
        st.last_addr = line_addr
        if st.confidence >= 2 and st.stride:
            for i in range(1, self.degree + 1):
                target = line_addr + i * st.stride
                if target >= 0:
                    cache.prefetch_fill(now, target, requestor)
                    self.stats.inc("issued")
