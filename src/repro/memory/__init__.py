"""Cycle-level memory hierarchy: caches, DRAM, prefetcher, crossbar."""

from .cache import AccessResult, Cache, CacheConfig, CacheLine
from .crossbar import Crossbar
from .dram import DRAM, DRAMConfig, hbm_like_config
from .hierarchy import CoreMemPorts, HostMemorySystem, NDPMemorySystem
from .main_memory import LINE_BYTES, MainMemory, WORD_BYTES, line_address
from .prefetcher import StridePrefetcher

__all__ = [
    "AccessResult", "Cache", "CacheConfig", "CacheLine", "CoreMemPorts",
    "Crossbar", "DRAM", "DRAMConfig", "HostMemorySystem", "LINE_BYTES",
    "MainMemory", "NDPMemorySystem", "StridePrefetcher", "WORD_BYTES",
    "hbm_like_config", "line_address",
]
