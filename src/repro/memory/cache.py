"""Set-associative write-back cache with MSHRs and ViReC register-line pinning.

The cache is a *timing-only* structure: architectural data lives in
:class:`~repro.memory.main_memory.MainMemory` and is updated functionally by
the cores, while this model answers "when is this access's data usable?".
That functional/timing split is the standard simulator organization and keeps
the golden model exact.

ViReC extensions (Section 5.3 of the paper):

* lines carry a register/data bit (``is_reg``) and a 3-bit pin counter;
* pinned register lines are skipped during victim selection, so live
  register contexts stay resident at the cost of dcache capacity — the
  effect measured in Figure 13;
* the access interface reports a ``switch_signal`` for data loads that miss
  in the tag array, the trigger input of the context-switch logic, and
  suppresses it for addresses inside the reserved register region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..stats.counters import Stats
from .main_memory import LINE_BYTES

PIN_MAX = 7  # 3-bit saturating pin counter


@dataclass
class CacheLine:
    tag: int
    dirty: bool = False
    ready_at: int = 0
    is_reg: bool = False
    pin: int = 0
    lru: int = 0


@dataclass
class AccessResult:
    """Outcome of a cache access.

    ``complete_at`` is the cycle the data is usable (reads) or the write is
    ordered (writes).  ``retry_at`` is set instead when the request could not
    be accepted (MSHRs exhausted) and must be re-presented.
    """

    complete_at: int = 0
    hit: bool = False
    under_fill: bool = False
    switch_signal: bool = False
    retry_at: Optional[int] = None

    @property
    def accepted(self) -> bool:
        return self.retry_at is None


@dataclass
class CacheConfig:
    name: str = "cache"
    size_bytes: int = 8 * 1024
    assoc: int = 4
    latency: int = 2
    mshrs: int = 24
    line_bytes: int = LINE_BYTES
    #: write-allocate write-back (the default, Table 1) or
    #: no-write-allocate write-through ("wt") — store misses bypass the
    #: cache and write downstream directly
    write_policy: str = "wb"

    def __post_init__(self) -> None:
        if self.write_policy not in ("wb", "wt"):
            raise ValueError(f"unknown write policy {self.write_policy!r}")


class Cache:
    """One level of cache.  ``next_level`` must expose
    ``access(now, line_addr, is_write=..., requestor=...) -> completion_cycle``.
    """

    def __init__(self, config: CacheConfig, next_level, stats: Stats | None = None,
                 prefetcher=None) -> None:
        if config.size_bytes % (config.assoc * config.line_bytes):
            raise ValueError("cache size must be a multiple of assoc * line size")
        self.config = config
        self.next_level = next_level
        self.stats = stats if stats is not None else Stats(config.name)
        self.prefetcher = prefetcher
        self.num_sets = config.size_bytes // (config.assoc * config.line_bytes)
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._mshr: Dict[int, int] = {}  # line_addr -> fill completion cycle
        self._lru_clock = 0
        #: [lo, hi) byte range reserved for register storage (ViReC); data
        #: loads inside it never raise the context-switch signal.
        self.register_region: Optional[Tuple[int, int]] = None
        #: optional telemetry callback ``(now, addr, is_write, fill_done,
        #: is_register)`` invoked on every demand miss; strictly opt-in and
        #: purely observational
        self.event_hook = None

    # -- geometry helpers ---------------------------------------------------
    def _locate(self, addr: int) -> Tuple[int, int, int]:
        line_addr = addr & ~(self.config.line_bytes - 1)
        line = line_addr // self.config.line_bytes
        return line_addr, line % self.num_sets, line // self.num_sets

    def _next_access(self, now: int, line_addr: int, is_write: bool,
                     requestor: int) -> int:
        """Forward to the next level; normalize its reply to a completion cycle.

        DRAM/crossbar levels return an int; a nested Cache level returns an
        :class:`AccessResult` (a full miss there may itself be retried once
        its MSHRs free up — we honour its retry hint).
        """
        reply = self.next_level.access(now, line_addr, is_write=is_write,
                                       requestor=requestor)
        while isinstance(reply, AccessResult) and not reply.accepted:
            reply = self.next_level.access(reply.retry_at, line_addr,
                                           is_write=is_write, requestor=requestor)
        return reply.complete_at if isinstance(reply, AccessResult) else reply

    def in_register_region(self, addr: int) -> bool:
        if self.register_region is None:
            return False
        lo, hi = self.register_region
        return lo <= addr < hi

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is present (possibly in flight)."""
        _, set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def line_state(self, addr: int) -> Optional[CacheLine]:
        _, set_idx, tag = self._locate(addr)
        return self._sets[set_idx].get(tag)

    # -- victim selection ------------------------------------------------------
    def _select_victim(self, set_idx: int, now: int) -> Optional[int]:
        """Tag of the victim line, or None if an empty way exists.

        Raises :class:`AllWaysBusy` when every way holds an in-flight fill.
        Pinned register lines are skipped unless every candidate is pinned,
        in which case the LRU pinned line is forcibly evicted (functionally
        safe — live register values are held in the RF; see DESIGN.md).
        """
        ways = self._sets[set_idx]
        if len(ways) < self.config.assoc:
            return None
        settled = {t: l for t, l in ways.items() if l.ready_at <= now}
        if not settled:
            raise AllWaysBusy(min(l.ready_at for l in ways.values()))
        unpinned = {t: l for t, l in settled.items() if l.pin == 0}
        pool = unpinned or settled
        if not unpinned:
            self.stats.inc("forced_pinned_evictions")
        return min(pool.items(), key=lambda kv: kv[1].lru)[0]

    def _evict(self, set_idx: int, tag: int, now: int, requestor: int) -> None:
        line = self._sets[set_idx].pop(tag)
        if line.dirty:
            victim_addr = (tag * self.num_sets + set_idx) * self.config.line_bytes
            self._next_access(now, victim_addr, is_write=True, requestor=requestor)
            self.stats.inc("writebacks")
        self.stats.inc("evictions")
        if line.is_reg:
            self.stats.inc("register_line_evictions")

    # -- main access path ----------------------------------------------------------
    def access(self, now: int, addr: int, is_write: bool = False, *,
               requestor: int = 0, is_load_data: bool = False,
               is_register: bool = False, pin_delta: int = 0) -> AccessResult:
        """Present one word/line access at cycle ``now``.

        ``is_load_data`` marks demand data loads from the LSQ (the only
        accesses that may raise ``switch_signal``).  ``is_register`` marks
        BSI register fill/spill traffic; ``pin_delta`` of +1/-1 adjusts the
        line's pin counter per Section 5.3 (fill pins, spill unpins).
        """
        cfg = self.config
        line_addr, set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        self._lru_clock += 1
        self._mshr = {a: c for a, c in self._mshr.items() if c > now}

        self.stats.inc("writes" if is_write else "reads")

        line = ways.get(tag)
        if line is not None:
            line.lru = self._lru_clock
            if is_write:
                line.dirty = True
            if is_register:
                line.is_reg = True
                line.pin = min(PIN_MAX, max(0, line.pin + pin_delta))
            if line.ready_at <= now:
                self.stats.inc("hits")
                return AccessResult(complete_at=now + cfg.latency, hit=True)
            # hit on an in-flight fill (MSHR merge): wait for the fill
            self.stats.inc("under_fill_hits")
            return AccessResult(complete_at=max(line.ready_at, now + cfg.latency),
                                hit=True, under_fill=True)

        # -- miss ------------------------------------------------------------
        if is_write and cfg.write_policy == "wt":
            # no-write-allocate: forward the store downstream, do not fill
            done = self._next_access(now + cfg.latency, line_addr,
                                     is_write=True, requestor=requestor)
            self.stats.inc("write_through")
            return AccessResult(complete_at=done, hit=False)
        if len(self._mshr) >= cfg.mshrs:
            self.stats.inc("mshr_full")
            return AccessResult(retry_at=min(self._mshr.values()), switch_signal=False)
        try:
            victim = self._select_victim(set_idx, now)
        except AllWaysBusy as busy:
            self.stats.inc("set_busy")
            return AccessResult(retry_at=busy.free_at)
        if victim is not None:
            self._evict(set_idx, victim, now + cfg.latency, requestor)

        self.stats.inc("misses")
        fill_done = self._next_access(now + cfg.latency, line_addr,
                                      is_write=False, requestor=requestor)
        if self.event_hook is not None:
            self.event_hook(now, addr, is_write, fill_done, is_register)
        new_line = CacheLine(tag=tag, dirty=is_write, ready_at=fill_done,
                             lru=self._lru_clock)
        if is_register:
            new_line.is_reg = True
            new_line.pin = min(PIN_MAX, max(0, pin_delta))
        ways[tag] = new_line
        self._mshr[line_addr] = fill_done

        if self.prefetcher is not None and not is_register:
            self.prefetcher.observe_miss(self, now, line_addr, requestor)

        switch = is_load_data and not self.in_register_region(addr)
        return AccessResult(complete_at=fill_done, hit=False, switch_signal=switch)

    # -- prefetch insertion (used by the stride prefetcher) --------------------
    def prefetch_fill(self, now: int, line_addr: int, requestor: int = 0) -> None:
        """Insert ``line_addr`` speculatively (no demand completion)."""
        _, set_idx, tag = self._locate(line_addr)
        ways = self._sets[set_idx]
        if tag in ways or len(self._mshr) >= self.config.mshrs:
            return
        try:
            victim = self._select_victim(set_idx, now)
        except AllWaysBusy:
            return
        if victim is not None:
            self._evict(set_idx, victim, now, requestor)
        self._lru_clock += 1
        fill_done = self._next_access(now, line_addr, is_write=False,
                                      requestor=requestor)
        ways[tag] = CacheLine(tag=tag, ready_at=fill_done, lru=self._lru_clock)
        self._mshr[line_addr] = fill_done
        self.stats.inc("prefetch_fills")

    # -- maintenance -------------------------------------------------------------
    def unpin(self, addr: int) -> bool:
        """Metadata-only pin release for the line holding ``addr``.

        Used by BSI writeback elision: a dead register's spill is skipped
        entirely, but the fill that brought it in pinned its backing line,
        so the pin must still be dropped or the line would stay pinned
        forever.  Pure bookkeeping — no port transaction, no timing effect.
        Returns True if the line was present.
        """
        _, set_idx, tag = self._locate(addr)
        line = self._sets[set_idx].get(tag)
        if line is None:
            return False
        line.pin = max(0, line.pin - 1)
        self.stats.inc("metadata_unpins")
        return True

    def invalidate_line(self, addr: int) -> bool:
        """Drop the line holding ``addr`` without writeback; True if present.

        Used by fault recovery (refill-from-backing-store): a line whose
        stored copy is corrupted must be re-fetched clean from the level
        below, so its contents are discarded rather than written back.
        """
        _, set_idx, tag = self._locate(addr)
        line = self._sets[set_idx].pop(tag, None)
        if line is None:
            return False
        self._mshr.pop(addr & ~(self.config.line_bytes - 1), None)
        self.stats.inc("line_invalidations")
        return True

    def register_region_lines(self) -> range:
        """Byte addresses of every line in the reserved register region
        (the fault injector's backing-store site list); empty when no
        region is reserved."""
        if self.register_region is None:
            return range(0)
        lo, hi = self.register_region
        lb = self.config.line_bytes
        return range(lo & ~(lb - 1), hi, lb)

    def warm(self, addr: int, dirty: bool = False, is_reg: bool = False,
             pin: int = 0) -> None:
        """Pre-install the line holding ``addr`` (test/setup helper)."""
        _, set_idx, tag = self._locate(addr)
        self._lru_clock += 1
        self._sets[set_idx][tag] = CacheLine(tag=tag, dirty=dirty, is_reg=is_reg,
                                             pin=pin, lru=self._lru_clock)

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)


class AllWaysBusy(Exception):
    """Every way of a set holds an in-flight fill; retry at ``free_at``."""

    def __init__(self, free_at: int) -> None:
        super().__init__(f"all ways busy until {free_at}")
        self.free_at = free_at
