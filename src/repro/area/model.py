"""Analytical 45nm area/delay model (Section 6.2).

The paper combines CACTI [39] for the CAM tag store / register file with a
FreePDK45 synthesis of the remaining VRMU logic, scaling the CVA6 [57]
baseline core to 45nm via Stillmaker-Baas equations [50].  We reproduce the
*structural scaling laws* those tools embody with a small analytical model
whose coefficients are calibrated to the endpoints the paper reports:

* baseline in-order core  ≈ 1.42 mm² (so ViReC @ 64 entries = +20% ≈ 1.7 mm²);
* banked core: 2.8 mm² at 8 threads and 3.9 mm² at 16 threads with 64
  registers per bank ⇒ banked RF = 0.28 mm² fixed + 2.15e-3 mm²/register
  (linear in banks — SRAM banks tile);
* ViReC RF+tag store: linear fully-associative data-array term plus a
  superlinear CAM search/priority term, so ViReC starts far smaller but
  overtakes banking when asked to hold complete contexts (Figure 14);
* rollback queue + misc VRMU logic ≈ 10% of the RF and scales more slowly;
* RF access delay: 0.22 ns baseline, banked ≈ 0.24 ns, ViReC linear in
  entries crossing 0.24 ns at ~80 registers;
* OoO host = 19.1x the in-order core area [43].

Every figure that reports area (Figures 1 and 14) uses this module, so the
calibration constants live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AreaConstants:
    """Calibrated 45nm coefficients (see module docstring for provenance)."""

    base_core_mm2: float = 1.42          # CVA6-class InO core, 32/32 regs
    ooo_ratio: float = 19.1              # N1-class OoO vs InO [43]

    banked_fixed_mm2: float = 0.28       # decoder/wiring fixed cost
    banked_per_reg_mm2: float = 2.15e-3  # SRAM bank cell+port cost

    virec_linear_mm2: float = 3.5e-3     # FA data array + CAM cells per entry
    virec_quad_mm2: float = 2.0e-6       # CAM search/priority superlinear term
    rollback_fraction: float = 0.10      # rollback queue + misc VRMU logic

    delay_base_ns: float = 0.22          # 32-entry baseline RF read
    delay_banked_ns: float = 0.24        # banked RF with thread mux
    virec_delay_base_ns: float = 0.20
    virec_delay_per_reg_ns: float = 5.0e-4


CONSTANTS = AreaConstants()


def banked_rf_area(n_regs: int, c: AreaConstants = CONSTANTS) -> float:
    """Area (mm²) of a banked register file with ``n_regs`` total registers."""
    if n_regs < 0:
        raise ValueError("register count must be non-negative")
    if n_regs == 0:
        return 0.0
    return c.banked_fixed_mm2 + c.banked_per_reg_mm2 * n_regs


def virec_rf_area(n_entries: int, c: AreaConstants = CONSTANTS) -> float:
    """Area (mm²) of the ViReC register cache: FA data array + CAM tag store
    + rollback queue and VRMU logic."""
    if n_entries < 0:
        raise ValueError("entry count must be non-negative")
    rf_and_tags = c.virec_linear_mm2 * n_entries + c.virec_quad_mm2 * n_entries ** 2
    return rf_and_tags * (1.0 + c.rollback_fraction)


def virec_breakdown(n_entries: int, c: AreaConstants = CONSTANTS) -> dict:
    """Component breakdown of the ViReC overhead (Section 6.2 analysis)."""
    data_array = 0.6 * c.virec_linear_mm2 * n_entries
    tag_store = (0.4 * c.virec_linear_mm2 * n_entries
                 + c.virec_quad_mm2 * n_entries ** 2)
    rollback = c.rollback_fraction * (data_array + tag_store)
    return {"data_array_mm2": data_array, "tag_store_mm2": tag_store,
            "rollback_and_logic_mm2": rollback,
            "total_mm2": data_array + tag_store + rollback}


def rf_delay_ns(kind: str, n_regs: int = 64, c: AreaConstants = CONSTANTS) -> float:
    """Register-file access delay (ns at 45nm) per design style."""
    if kind == "baseline":
        return c.delay_base_ns
    if kind == "banked":
        return c.delay_banked_ns
    if kind == "virec":
        return c.virec_delay_base_ns + c.virec_delay_per_reg_ns * n_regs
    raise ValueError(f"unknown RF kind {kind!r}")
