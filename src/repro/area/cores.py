"""Core-level area accounting for every processor in the evaluation."""

from __future__ import annotations

from .model import CONSTANTS, AreaConstants, banked_rf_area, virec_rf_area


def inorder_core_area(c: AreaConstants = CONSTANTS) -> float:
    """Single-threaded in-order baseline (its 32-entry RF is included)."""
    return c.base_core_mm2


def ooo_core_area(c: AreaConstants = CONSTANTS) -> float:
    """N1-class out-of-order host core."""
    return c.base_core_mm2 * c.ooo_ratio


def banked_core_area(n_threads: int, regs_per_bank: int = 64,
                     c: AreaConstants = CONSTANTS) -> float:
    """CGMT core with one full register bank per thread.

    The baseline core already contains one context's registers; additional
    threads add banks (Figure 14 sweeps threads at 64 regs/bank).
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    return c.base_core_mm2 + banked_rf_area(n_threads * regs_per_bank)


def virec_core_area(rf_entries: int, c: AreaConstants = CONSTANTS) -> float:
    """ViReC core: baseline pipeline + register cache + VRMU.

    The baseline's own RF is replaced by the cache, but its area is part of
    the calibrated ``base_core_mm2``; the paper reports ViReC's addition as
    a ~20% overhead at 64 entries, which this reproduces.
    """
    return c.base_core_mm2 + virec_rf_area(rf_entries)


def swctx_core_area(c: AreaConstants = CONSTANTS) -> float:
    """Software context switching: just the baseline core."""
    return c.base_core_mm2


def prefetch_core_area(regs_per_bank: int = 64, c: AreaConstants = CONSTANTS) -> float:
    """Double-buffer prefetching: two banks plus transfer engine (~5%)."""
    return c.base_core_mm2 + banked_rf_area(2 * regs_per_bank) * 1.05


def multi_core_area(core_area_mm2: float, n_cores: int) -> float:
    """N replicated near-memory processors (crossbar area excluded, as in
    the paper's per-processor comparison)."""
    return core_area_mm2 * n_cores


def area_table(max_threads: int = 16, regs_per_thread_options=(5, 8, 16, 32, 64),
               c: AreaConstants = CONSTANTS):
    """The Figure 14 dataset: area vs thread count for banked and ViReC.

    Returns a list of dict rows (one per thread count) with the banked area
    and one ViReC column per per-thread register-cache provision.
    """
    rows = []
    t = 1
    while t <= max_threads:
        row = {"threads": t, "banked_mm2": banked_core_area(t)}
        for rpt in regs_per_thread_options:
            row[f"virec_{rpt}_regs_mm2"] = virec_core_area(t * rpt)
        rows.append(row)
        t *= 2
    return rows
