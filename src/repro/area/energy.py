"""Per-access energy model for the register storage alternatives.

The paper optimizes performance-area; the closest prior work it builds on
(Gebhart et al. [25], LTRF [45]) optimizes register-file *energy*.  This
module adds that dimension so the tradeoff can be examined end to end:

* banked RF read/write energy grows with the total registers behind the
  decoder (bigger word lines / longer bit lines);
* ViReC pays a CAM tag search on every access plus a small data array, and
  additionally pays dcache accesses for fills/spills;
* a run's total register-system energy combines per-access costs with the
  access counts from a simulated core's stats.

Coefficients are order-of-magnitude 45 nm estimates in picojoules,
anchored so a 64-register bank read costs ~1 pJ (CACTI-class numbers);
as with the area model, only *relative* comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyConstants:
    """45 nm per-access energy coefficients (pJ)."""

    sram_read_base_pj: float = 0.55      # fixed sense/decode cost
    sram_read_per_reg_pj: float = 0.007  # bit/word-line growth per register
    sram_write_factor: float = 1.15      # writes slightly above reads
    cam_search_per_entry_pj: float = 0.016  # parallel tag match per entry
    fa_data_read_pj: float = 0.45        # small FA data array access
    dcache_access_pj: float = 12.0       # 8kB dcache read/write (per word)
    leakage_per_reg_pw_cycle: float = 0.004e-3  # static, per register-cycle


CONSTANTS = EnergyConstants()


def banked_access_energy(total_regs: int, is_write: bool = False,
                         c: EnergyConstants = CONSTANTS) -> float:
    """Energy (pJ) of one access to a banked RF with ``total_regs`` behind
    the bank decoder (bank-selected, so per-bank size dominates; the
    decoder/wiring term grows with bank count)."""
    if total_regs < 1:
        raise ValueError("need at least one register")
    e = c.sram_read_base_pj + c.sram_read_per_reg_pj * total_regs
    return e * (c.sram_write_factor if is_write else 1.0)


def virec_access_energy(rf_entries: int, is_write: bool = False,
                        c: EnergyConstants = CONSTANTS) -> float:
    """Energy (pJ) of one ViReC register access: CAM search + data array."""
    if rf_entries < 1:
        raise ValueError("need at least one entry")
    e = c.cam_search_per_entry_pj * rf_entries + c.fa_data_read_pj
    return e * (c.sram_write_factor if is_write else 1.0)


def fill_spill_energy(c: EnergyConstants = CONSTANTS) -> float:
    """Energy (pJ) of moving one register between RF and dcache."""
    return c.dcache_access_pj


@dataclass
class EnergyReport:
    """Register-system energy of one simulated run."""

    design: str
    access_pj: float
    traffic_pj: float
    leakage_pj: float

    @property
    def total_pj(self) -> float:
        return self.access_pj + self.traffic_pj + self.leakage_pj


def banked_run_energy(accesses: int, cycles: int, n_threads: int,
                      regs_per_bank: int = 64,
                      c: EnergyConstants = CONSTANTS) -> EnergyReport:
    """Energy of a banked-RF run (no fill/spill traffic by construction)."""
    total_regs = n_threads * regs_per_bank
    access = accesses * banked_access_energy(total_regs, c=c)
    leak = cycles * total_regs * c.leakage_per_reg_pw_cycle * 1e3  # pW->pJ-ish
    return EnergyReport("banked", access, 0.0, leak)


def virec_run_energy(accesses: int, fills: int, spills: int, cycles: int,
                     rf_entries: int,
                     c: EnergyConstants = CONSTANTS) -> EnergyReport:
    """Energy of a ViReC run including backing-store register traffic."""
    access = accesses * virec_access_energy(rf_entries, c=c)
    traffic = (fills + spills) * fill_spill_energy(c)
    leak = cycles * rf_entries * c.leakage_per_reg_pw_cycle * 1e3
    return EnergyReport("virec", access, traffic, leak)


def energy_from_stats(core_stats, design: str, n_threads: int,
                      rf_entries: int = 0,
                      c: EnergyConstants = CONSTANTS) -> EnergyReport:
    """Build a report from a simulated core's stats namespace."""
    if design not in ("banked", "virec"):
        raise ValueError(f"unknown design {design!r}")
    cycles = int(core_stats["cycles"])
    if design == "banked":
        # banked cores do not count register accesses; estimate ~2.2 per
        # committed instruction (operand reads + writeback), the same rate
        # the VRMU observes
        accesses = int(core_stats["instructions"] * 2.2)
        return banked_run_energy(accesses, cycles, n_threads, c=c)
    if design == "virec":
        vrmu = core_stats.children().get("vrmu")
        bsi = core_stats.children().get("bsi")
        accesses = int(vrmu["accesses"]) if vrmu else 0
        fills = int(bsi["fills"]) if bsi else 0
        spills = int(bsi["spills"]) if bsi else 0
        return virec_run_energy(accesses, fills, spills, cycles, rf_entries, c=c)
    raise AssertionError("unreachable")  # pragma: no cover
