"""Analytical 45nm area/delay model for all core variants (Section 6.2)."""

from .cores import (
    area_table,
    banked_core_area,
    inorder_core_area,
    multi_core_area,
    ooo_core_area,
    prefetch_core_area,
    swctx_core_area,
    virec_core_area,
)
from .model import (
    CONSTANTS,
    AreaConstants,
    banked_rf_area,
    rf_delay_ns,
    virec_breakdown,
    virec_rf_area,
)

__all__ = [
    "CONSTANTS", "AreaConstants", "area_table", "banked_core_area",
    "banked_rf_area", "inorder_core_area", "multi_core_area", "ooo_core_area",
    "prefetch_core_area", "rf_delay_ns", "swctx_core_area", "virec_breakdown",
    "virec_core_area", "virec_rf_area",
]
