"""Per-core telemetry adapter and VRMU introspection probes.

:class:`CoreTelemetry` is the object a core's ``telemetry`` attribute
points at (``None`` by default — the same strictly-opt-in discipline as
``fault_hook``).  It translates pipeline callbacks into trace events and
drives the interval sampler off the core's commit clock.

:class:`VRMUProbe` attaches to a ViReC core's VRMU and collects the
register-cache dynamics the paper's figures argue from: occupancy by
thread, eviction-cause breakdown (capacity vs. cross-thread vs. group /
prefetch / task-drop), and per-register residency histograms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import BSI_TRACK, CTRL_TRACK, DCACHE_TRACK, EventTracer


class CoreTelemetry:
    """Event + sampling adapter for one core (attach via ``core.telemetry``)."""

    def __init__(self, session, core) -> None:
        self.session = session
        self.core = core
        self.cfg = session.config
        self.pid = core.core_id
        self.events: Optional[EventTracer] = (session.events
                                              if self.cfg.events else None)
        self.sampler = None          # set by the session when interval > 0
        self.vrmu_probe: Optional[VRMUProbe] = None
        self._run_start: Dict[int, int] = {}
        self._prev_instr = 0
        # dcache misses counted here because the cache's Stats counters
        # live under the shared "mem" subtree, outside the per-core tree
        # the interval sampler snapshots
        self._dcache_misses = 0
        self._prev_dcache = 0
        if self.events is not None:
            for th in core.threads:
                self.events.register_track(self.pid, th.tid,
                                           f"thread {th.tid}")

    # -- scheduler callbacks (TimelineCore) --------------------------------
    def on_run_begin(self, tid: int, t: int) -> None:
        self._run_start[tid] = t

    def _end_run(self, tid: int, t: int, reason: str) -> None:
        start = self._run_start.pop(tid, None)
        if start is None or self.events is None:
            return
        self.events.complete("run", start, t - start, self.pid, tid,
                             args={"reason": reason})

    def on_switch(self, tid: int, t: int, ready_at: int,
                  flushed: int) -> None:
        """Thread ``tid`` switched out on a demand-load miss at ``t``."""
        self._end_run(tid, t, "miss-switch")
        if self.events is not None:
            self.events.instant("ctx_switch", t, self.pid, CTRL_TRACK,
                                args={"tid": tid, "flushed": flushed})
            self.events.complete("stall", t, ready_at - t, self.pid, tid,
                                 args={"cause": "dcache-miss"})

    def on_stall_in_place(self, tid: int, t: int, until: int,
                          cause: str) -> None:
        """Thread stalled without switching (masked switch)."""
        if self.events is not None and until > t:
            self.events.complete("stall", t, until - t, self.pid, tid,
                                 args={"cause": cause})

    def on_thread_done(self, tid: int, t: int) -> None:
        self._end_run(tid, t, "done")
        if self.events is not None:
            self.events.instant("thread_done", t, self.pid, CTRL_TRACK,
                                args={"tid": tid})

    def on_commit(self, cycle: int) -> None:
        if self.sampler is not None:
            self.sampler.on_cycle(cycle)

    # -- context-storage callbacks (CGMT cores) ----------------------------
    def on_context_move(self, kind: str, tid: int, t: int, done: int) -> None:
        """Banked context fetch / software save-restore traffic."""
        if self.events is not None:
            self.events.complete(kind, t, done - t, self.pid, CTRL_TRACK,
                                 args={"tid": tid})

    # -- memory callbacks --------------------------------------------------
    def on_dcache_miss(self, now: int, addr: int, is_write: bool,
                       fill_done: int, is_register: bool) -> None:
        self._dcache_misses += 1
        if self.events is not None:
            self.events.complete(
                "dcache_miss", now, fill_done - now, self.pid, DCACHE_TRACK,
                args={"addr": int(addr), "write": bool(is_write),
                      "reg_region": bool(is_register)})

    # -- sysreg ping-pong buffer (CSL) -------------------------------------
    def on_sysreg(self, kind: str, tid: int, t: int) -> None:
        if self.events is not None:
            self.events.instant("sysreg", t, self.pid, CTRL_TRACK,
                                args={"kind": kind, "tid": tid})

    # -- fault injection ---------------------------------------------------
    def on_fault(self, site: str, t: int) -> None:
        if self.events is not None:
            self.events.instant("fault", t, self.pid, CTRL_TRACK,
                                args={"site": site})

    # -- interval-sampler extras ------------------------------------------
    def collect(self, cycle: int) -> Dict:
        """Row fragment for the interval sampler (instructions, occupancy)."""
        total = sum(th.instructions for th in self.core.threads)
        row: Dict = {"instructions": total - self._prev_instr,
                     "dcache_misses": self._dcache_misses - self._prev_dcache}
        self._prev_instr = total
        self._prev_dcache = self._dcache_misses
        if self.vrmu_probe is not None:
            occ = self.vrmu_probe.occupancy()
            row["occupancy_total"] = sum(occ.values())
            for tid in sorted(occ):
                row[f"occupancy_t{tid}"] = occ[tid]
        return row

    def finalize(self, cycle: int) -> None:
        for tid in list(self._run_start):
            self._end_run(tid, cycle, "end-of-run")
        if self.sampler is not None:
            self.sampler.finalize(cycle)
        if self.vrmu_probe is not None:
            self.vrmu_probe.finalize(cycle)


def _log2_bucket(cycles: int) -> int:
    """Histogram bucket: floor(log2(residency)), bucket 0 = [0, 2)."""
    b = 0
    c = max(0, int(cycles)) >> 1
    while c:
        b += 1
        c >>= 1
    return b


class VRMUProbe:
    """Introspection hooks wired into :class:`~repro.virec.vrmu.VRMU`.

    Aggregates occupancy, eviction causes, and residency; optionally emits
    per-event records (miss, evict, fill, spill) into the event tracer.
    Purely observational — never touches VRMU state or timing.
    """

    def __init__(self, ct: CoreTelemetry, vrmu) -> None:
        self.ct = ct
        self.vrmu = vrmu
        self.tagstore = vrmu.tagstore
        self.hits = 0
        self.misses = 0
        self.eviction_causes: Dict[str, int] = {}
        #: log2 residency-duration histogram: bucket -> evictions
        self.residency_hist: Dict[int, int] = {}
        #: flat architectural register -> total resident cycles (all threads)
        self.reg_residency: Dict[int, int] = {}
        #: per-thread peak register-cache occupancy
        self.peak_occupancy: Dict[int, int] = {}
        self._inserted: Dict[int, Tuple[int, int, int]] = {}  # slot->(tid,reg,t)

    # -- VRMU callbacks ----------------------------------------------------
    def on_hit(self, tid: int, reg: int, t: int) -> None:
        self.hits += 1
        ev = self.ct.events
        if ev is not None and self.ct.cfg.verbose_hits:
            ev.instant("vrmu_hit", t, self.ct.pid, BSI_TRACK,
                       args={"tid": tid, "reg": reg})

    def on_miss(self, tid: int, reg: int, t: int) -> None:
        self.misses += 1
        ev = self.ct.events
        if ev is not None:
            ev.instant("vrmu_miss", t, self.ct.pid, BSI_TRACK,
                       args={"tid": tid, "reg": reg})

    def on_insert(self, slot: int, tid: int, reg: int, t: int) -> None:
        self._inserted[slot] = (tid, reg, t)
        occ = self.tagstore.resident_count(tid)
        if occ > self.peak_occupancy.get(tid, 0):
            self.peak_occupancy[tid] = occ

    def _close_residency(self, slot: int, t: int) -> int:
        tid, reg, t0 = self._inserted.pop(slot, (None, None, t))
        span = max(0, t - t0)
        if reg is not None:
            self.reg_residency[reg] = self.reg_residency.get(reg, 0) + span
        self.residency_hist[_log2_bucket(span)] = \
            self.residency_hist.get(_log2_bucket(span), 0) + 1
        return span

    def on_evict(self, slot: int, requester_tid: int, cause: str,
                 t: int) -> None:
        """Called *before* the tag store drops ``slot``."""
        ts = self.tagstore
        owner, areg = int(ts.owner[slot]), int(ts.areg[slot])
        if cause == "capacity" and owner != requester_tid:
            cause = "thread"  # cross-thread displacement, not self-capacity
        self.eviction_causes[cause] = self.eviction_causes.get(cause, 0) + 1
        span = self._close_residency(slot, t)
        ev = self.ct.events
        if ev is not None:
            args = {"owner": owner, "reg": areg, "cause": cause,
                    "residency": span,
                    "dirty": bool(ts.dirty[slot])}
            args.update(ts.policy.describe(slot))
            ev.instant("evict", t, self.ct.pid, BSI_TRACK, args=args)

    def on_fill(self, tid: int, reg: int, t: int, done: int,
                dummy: bool = False) -> None:
        ev = self.ct.events
        if ev is None:
            return
        name = "dummy_fill" if dummy else "fill"
        ev.complete(name, t, done - t, self.ct.pid, BSI_TRACK,
                    args={"tid": tid, "reg": reg})
        if self.ct.cfg.flow_events and not dummy:
            ev.flow_pair("fill_flow", t, tid, done, BSI_TRACK, self.ct.pid)

    def on_spill(self, tid: int, reg: int, dirty: bool, t: int) -> None:
        ev = self.ct.events
        if ev is None:
            return
        ev.complete("spill", t, 1, self.ct.pid, BSI_TRACK,
                    args={"tid": tid, "reg": reg, "dirty": bool(dirty)})
        if self.ct.cfg.flow_events:
            ev.flow_pair("spill_flow", t, tid, t, BSI_TRACK, self.ct.pid)

    # -- introspection -----------------------------------------------------
    def occupancy(self) -> Dict[int, int]:
        """Current register-cache occupancy per thread id."""
        return self.tagstore.occupancy_by_thread()

    def finalize(self, cycle: int) -> None:
        """Close residency spans of registers still resident at run end."""
        for slot in list(self._inserted):
            self._close_residency(slot, cycle)

    def summary(self) -> Dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 6) if total else None,
            "eviction_causes": dict(sorted(self.eviction_causes.items())),
            "residency_hist_log2": {str(k): v for k, v in
                                    sorted(self.residency_hist.items())},
            "reg_residency_cycles": {str(k): v for k, v in
                                     sorted(self.reg_residency.items())},
            "peak_occupancy": {str(k): v for k, v in
                               sorted(self.peak_occupancy.items())},
        }
