"""Host-side wall-clock profiler: where does *simulator* time go?

Separate from the simulated-cycle instruments: this measures the
reproduction tool itself (phase wall-clock, simulated instructions per
host second) so simulator performance regressions are visible run-over-run
— :mod:`benchmarks.bench_simulator_speed` persists these numbers as
``BENCH_simspeed.json``.

Wall-clock numbers never feed back into simulated timing and are excluded
from deterministic artifacts (manifest digests, metrics JSONL).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional


class HostProfiler:
    """Named-phase wall-clock accumulator."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}
        self._order = []
        self._t0 = time.perf_counter()

    @contextmanager
    def phase(self, name: str):
        """Accumulate the body's wall-clock under ``name``."""
        if name not in self.phases:
            self.phases[name] = 0.0
            self._order.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] += time.perf_counter() - start

    @property
    def total_s(self) -> float:
        return time.perf_counter() - self._t0

    def as_dict(self, instructions: Optional[int] = None,
                cycles: Optional[int] = None,
                events: Optional[int] = None) -> Dict:
        """Phase table plus derived throughput rates."""
        total = self.total_s
        out: Dict = {
            "total_s": round(total, 6),
            "phases_s": {name: round(self.phases[name], 6)
                         for name in self._order},
        }
        sim = self.phases.get("simulate")
        if sim and instructions is not None:
            out["instr_per_s"] = round(instructions / sim, 1)
        if sim and cycles is not None:
            out["cycles_per_s"] = round(cycles / sim, 1)
        if sim and events is not None:
            out["events_per_s"] = round(events / sim, 1)
        return out
