"""Structured event tracing with a Chrome trace-event JSON exporter.

Components emit typed events (context switch, VRMU miss/evict with cause,
spill, fill, dcache miss, fault injection, thread stall/run segments) into
an :class:`EventTracer` ring.  :meth:`EventTracer.chrome_trace` exports the
ring in the Chrome trace-event format, so any run opens directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* one *process* per simulated core (``pid`` = core id);
* one *track* per hardware thread (``tid`` = thread id) carrying ``run``
  and ``stall`` duration slices;
* auxiliary per-core tracks for the VRMU/BSI, the dcache, and
  scheduler/fault control events;
* spill/fill slices on the BSI track linked to the requesting thread's run
  slice with flow arrows (``s``/``f`` event pairs).

Timestamps are simulated cycles, exported 1 cycle = 1 µs so Perfetto's
time axis reads directly in cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: synthetic track (tid) numbers for non-thread event sources, per core
BSI_TRACK = 100
DCACHE_TRACK = 101
CTRL_TRACK = 102
PROFILE_TRACK = 103

_TRACK_NAMES = {
    BSI_TRACK: "vrmu/bsi",
    DCACHE_TRACK: "dcache",
    CTRL_TRACK: "sched/faults",
    PROFILE_TRACK: "cycle causes",
}

#: event name -> category, for the exported ``cat`` field
EVENT_CATEGORIES = {
    "run": "sched", "stall": "sched", "ctx_switch": "sched",
    "thread_done": "sched", "ctx_fetch": "sched", "ctx_save": "sched",
    "ctx_restore": "sched",
    "vrmu_hit": "vrmu", "vrmu_miss": "vrmu", "evict": "vrmu",
    "fill": "vrmu", "dummy_fill": "vrmu", "spill": "vrmu",
    "sysreg": "vrmu",
    "dcache_miss": "mem",
    "fault": "fault",
    "cycle_causes": "profile",
}


class EventTracer:
    """Bounded ring of trace events shared by every core of one run."""

    def __init__(self, max_events: int = 200_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self.dropped = 0
        self.counts: Dict[str, int] = {}
        self._ring: List[dict] = []
        self._head = 0
        self._flow_id = 0
        self._tracks: Dict[Tuple[int, int], str] = {}
        self._process_names: Dict[int, str] = {}

    # -- emission ----------------------------------------------------------
    def register_track(self, pid: int, tid: int, name: str) -> None:
        self._tracks[(pid, tid)] = name

    def register_process(self, pid: int, name: str) -> None:
        """Name a pid track (default: ``core {pid}``).

        Single-run traces keep the default (pid = simulated core id);
        cross-process sweep traces use this to label each worker process.
        """
        self._process_names[pid] = name

    def next_flow_id(self) -> int:
        self._flow_id += 1
        return self._flow_id

    def emit(self, name: str, ph: str, ts: int, pid: int, tid: int,
             dur: Optional[int] = None, args: Optional[dict] = None,
             flow: Optional[int] = None, bind: Optional[str] = None) -> None:
        """Record one trace event.

        ``ph`` is the Chrome trace phase: ``X`` complete (with ``dur``),
        ``i`` instant, ``s``/``f`` flow start/finish.  ``flow`` carries the
        flow id for s/f pairs; ``bind`` sets the flow binding point.
        """
        self.counts[name] = self.counts.get(name, 0) + 1
        ev = {"name": name, "ph": ph, "ts": int(ts), "pid": int(pid),
              "tid": int(tid),
              "cat": EVENT_CATEGORIES.get(name, "misc")}
        if dur is not None:
            ev["dur"] = max(0, int(dur))
        if args:
            ev["args"] = args
        if flow is not None:
            ev["id"] = flow
        if bind is not None:
            ev["bp"] = bind
        if len(self._ring) < self.max_events:
            self._ring.append(ev)
        else:
            self._ring[self._head] = ev
            self._head = (self._head + 1) % self.max_events
            self.dropped += 1

    # -- convenience wrappers ---------------------------------------------
    def instant(self, name: str, ts: int, pid: int, tid: int,
                args: Optional[dict] = None) -> None:
        self.emit(name, "i", ts, pid, tid, args=args)

    def complete(self, name: str, ts: int, dur: int, pid: int, tid: int,
                 args: Optional[dict] = None) -> None:
        self.emit(name, "X", ts, pid, tid, dur=dur, args=args)

    def flow_pair(self, name: str, t_from: int, tid_from: int,
                  t_to: int, tid_to: int, pid: int) -> None:
        """Arrow from (tid_from, t_from) to (tid_to, t_to) on core ``pid``."""
        fid = self.next_flow_id()
        self.emit(name, "s", t_from, pid, tid_from, flow=fid)
        self.emit(name, "f", t_to, pid, tid_to, flow=fid, bind="e")

    # -- introspection -----------------------------------------------------
    @property
    def events(self) -> List[dict]:
        """Retained events in emission order."""
        if len(self._ring) < self.max_events:
            return list(self._ring)
        return self._ring[self._head:] + self._ring[:self._head]

    def __len__(self) -> int:
        return len(self._ring)

    # -- export ------------------------------------------------------------
    def chrome_trace(self, metadata: Optional[dict] = None) -> dict:
        """The full run as a Chrome trace-event JSON object.

        Events are ordered by (pid, tid, ts) so every track's timestamps
        are monotonic; thread-name metadata labels each track.
        """
        out: List[dict] = []
        tracks = dict(self._tracks)
        for ev in self._ring:
            key = (ev["pid"], ev["tid"])
            if key not in tracks:
                tracks[key] = _TRACK_NAMES.get(ev["tid"],
                                               f"thread {ev['tid']}")
        pids = {p for p, _ in tracks} | set(self._process_names)
        for pid in sorted(pids):
            pname = self._process_names.get(pid, f"core {pid}")
            out.append({"name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0, "args": {"name": pname}})
        for (pid, tid), name in sorted(tracks.items()):
            out.append({"name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": name}})
            out.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"sort_index": tid}})
        out.extend(sorted(self.events,
                          key=lambda e: (e["pid"], e["tid"], e["ts"])))
        trace = {"traceEvents": out, "displayTimeUnit": "ms",
                 "otherData": {"clock": "1 cycle = 1us",
                               "dropped_events": self.dropped}}
        if metadata:
            trace["otherData"].update(metadata)
        return trace
