"""Telemetry campaign description (safe to embed in a RunConfig).

Mirrors the fault subsystem's opt-in discipline: ``RunConfig(telemetry=...)``
takes a :class:`TelemetryConfig` (or a dict of its fields), and with the
field left ``None`` nothing is wired — runs are bit-identical to a build
without this package.  All instruments are purely observational: they read
simulator state but never alter a timestamp, so even a telemetry-*on* run
produces the same cycle counts as a telemetry-off run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect during a run."""

    #: structured event tracing (context switches, VRMU traffic, dcache
    #: misses, faults) exportable as Chrome trace-event JSON
    events: bool = True
    #: cycles between interval-metric samples (0 = no interval sampling)
    interval: int = 0
    #: VRMU introspection probes: occupancy by thread, eviction-cause
    #: breakdown, residency histograms (no-op on cores without a VRMU)
    vrmu_probes: bool = True
    #: attach a :class:`~repro.core.trace.PipelineTracer` to every core and
    #: fold its stall attribution into the telemetry report
    pipeline_trace: bool = False
    #: ring capacity of the pipeline tracer (when ``pipeline_trace``)
    pipeline_trace_limit: int = 10_000
    #: event-ring capacity; the oldest events are overwritten past this
    max_events: int = 200_000
    #: connect spill/fill slices to their requesting thread with
    #: Chrome-trace flow arrows (s/f event pairs)
    flow_events: bool = True
    #: also record individual VRMU *hit* events (very high volume; hits are
    #: always aggregated into counters and interval series regardless)
    verbose_hits: bool = False

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError("telemetry interval must be >= 0")
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        if self.pipeline_trace_limit < 1:
            raise ValueError("pipeline_trace_limit must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any instrument would actually be wired."""
        return bool(self.events or self.interval or self.vrmu_probes
                    or self.pipeline_trace)

    @classmethod
    def from_spec(cls, spec) -> "TelemetryConfig":
        """Build from a TelemetryConfig, a dict of its fields, or None."""
        if spec is None:
            return cls(events=False, interval=0, vrmu_probes=False)
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            known = {f.name for f in fields(cls)}
            unknown = set(spec) - known
            if unknown:
                raise ValueError(
                    f"unknown telemetry field(s) {sorted(unknown)}; "
                    f"choose from {sorted(known)}")
            return cls(**spec)
        raise TypeError(f"telemetry spec must be a TelemetryConfig or dict, "
                        f"not {type(spec).__name__}")

    def with_(self, **kw) -> "TelemetryConfig":
        return replace(self, **kw)
