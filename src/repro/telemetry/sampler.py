"""Interval metrics: per-N-cycle deltas of a core's Stats tree.

The sampler snapshots a core's :class:`~repro.stats.counters.Stats` subtree
(via ``Stats.snapshot()/delta()``) every ``interval`` cycles of that core's
commit clock and emits one row per interval with the *deltas* — IPC, VRMU
hit rate, spill/fill bandwidth, dcache misses — plus whatever the attached
collector adds (per-thread register-cache occupancy, instruction counts).

Rows are plain dicts of JSON scalars, exportable as deterministic JSONL
(same seed + config => byte-identical output) and renderable as ASCII
sparklines via :func:`repro.stats.reporting.render_intervals`.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from ..stats.counters import Stats

#: dotted-suffix -> row column; values are summed over all matching
#: counters in the sampled subtree (so multi-level trees just work)
_DELTA_COLUMNS = {
    "vrmu.hits": "vrmu_hits",
    "vrmu.misses": "vrmu_misses",
    "vrmu.spill_evictions": "vrmu_evictions",
    "bsi.fills": "fills",
    "bsi.dummy_fills": "dummy_fills",
    "bsi.spills": "spills",
    "dcache.misses": "dcache_misses",
    "context_switches": "context_switches",
}


def _pick(delta: Dict[str, float], suffix: str) -> float:
    return sum(v for k, v in delta.items()
               if k == suffix or k.endswith("." + suffix))


class IntervalSampler:
    """Periodic Stats-delta sampler for one core.

    ``extra`` is an optional callable ``extra(cycle) -> dict`` merged into
    every row (the core-telemetry adapter uses it for instruction deltas
    and VRMU occupancy, which live outside the Stats tree).
    """

    def __init__(self, interval: int, stats: Stats, core_id: int = 0,
                 extra: Optional[Callable[[int], Dict]] = None) -> None:
        if interval < 1:
            raise ValueError("sampler interval must be >= 1")
        self.interval = interval
        self.stats = stats
        self.core_id = core_id
        self.extra = extra
        self.rows: List[Dict] = []
        self._snap = stats.snapshot()
        self._next = interval

    # -- sampling ----------------------------------------------------------
    def on_cycle(self, cycle: int) -> None:
        """Advance the sampler to commit-clock ``cycle`` (monotone)."""
        while cycle >= self._next:
            self._sample(self._next, self.interval)
            self._next += self.interval

    def finalize(self, cycle: int) -> None:
        """Emit the final partial interval (if any cycles elapsed)."""
        self.on_cycle(cycle)
        elapsed = cycle - (self._next - self.interval)
        if elapsed > 0:
            self._sample(cycle, elapsed)

    def _sample(self, cycle: int, elapsed: int) -> None:
        delta = self.stats.delta(self._snap)
        self._snap = self.stats.snapshot()
        row: Dict = {"core": self.core_id, "cycle": int(cycle),
                     "elapsed": int(elapsed)}
        for suffix, column in _DELTA_COLUMNS.items():
            row[column] = _pick(delta, suffix)
        hits, misses = row["vrmu_hits"], row["vrmu_misses"]
        row["vrmu_hit_rate"] = (round(hits / (hits + misses), 6)
                                if hits + misses else None)
        row["spill_fill_per_kcycle"] = round(
            (row["spills"] + row["fills"] + row["dummy_fills"])
            * 1000.0 / elapsed, 3)
        if self.extra is not None:
            row.update(self.extra(cycle))
        if "instructions" in row:
            row["ipc"] = round(row["instructions"] / elapsed, 6)
        self.rows.append(row)

    # -- export ------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Rows as deterministic JSON lines (sorted keys, trailing \\n)."""
        if not self.rows:
            return ""
        return "\n".join(json.dumps(row, sort_keys=True)
                         for row in self.rows) + "\n"


def merge_rows(samplers: List[IntervalSampler]) -> List[Dict]:
    """All samplers' rows interleaved by (cycle, core) — the JSONL order
    for multi-core runs."""
    rows: List[Dict] = []
    for s in samplers:
        rows.extend(s.rows)
    rows.sort(key=lambda r: (r["cycle"], r["core"]))
    return rows
