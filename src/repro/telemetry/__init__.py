"""Telemetry: event tracing, interval metrics, and introspection probes.

The observability layer of the reproduction.  One
:class:`TelemetrySession` per run owns the shared event ring, the per-core
interval samplers, and the VRMU probes; :func:`TelemetrySession.attach`
wires a core's opt-in hooks (``core.telemetry``, ``vrmu.probe``,
``dcache.event_hook``, ...).

Strictly opt-in: with ``RunConfig(telemetry=None)`` (the default) nothing
is wired and runs are bit-identical to a build without this package; with
telemetry on, every instrument is purely observational, so cycle counts
are *still* identical — enforced by tests/telemetry/test_noop.py.

Artifacts:

* ``session.write_chrome_trace(path)`` — Chrome trace-event JSON (opens in
  Perfetto / chrome://tracing);
* ``session.metrics_jsonl()`` — deterministic per-interval metric rows;
* ``session.report()`` — terminal summary (event counts, VRMU eviction
  causes and residency, pipeline stall attribution).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .config import TelemetryConfig
from .events import BSI_TRACK, CTRL_TRACK, DCACHE_TRACK, EventTracer
from .probes import CoreTelemetry, VRMUProbe
from .profiler import HostProfiler
from .sampler import IntervalSampler, merge_rows

__all__ = ["BSI_TRACK", "CTRL_TRACK", "CoreTelemetry", "DCACHE_TRACK",
           "EventTracer", "HostProfiler", "IntervalSampler",
           "TelemetryConfig", "TelemetrySession", "VRMUProbe", "merge_rows"]


class TelemetrySession:
    """All telemetry state of one simulation run."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.events: Optional[EventTracer] = (
            EventTracer(self.config.max_events) if self.config.events
            else None)
        self.cores: List[CoreTelemetry] = []

    # -- wiring ------------------------------------------------------------
    def attach(self, core) -> CoreTelemetry:
        """Wire one core's opt-in telemetry hooks to this session."""
        cfg = self.config
        ct = CoreTelemetry(self, core)
        core.telemetry = ct
        if cfg.pipeline_trace and core.tracer is None:
            from ..core.trace import PipelineTracer
            core.tracer = PipelineTracer(limit=cfg.pipeline_trace_limit)
        if cfg.vrmu_probes and hasattr(core, "vrmu"):
            probe = VRMUProbe(ct, core.vrmu)
            core.vrmu.probe = probe
            ct.vrmu_probe = probe
            if getattr(core, "sysregs", None) is not None:
                core.sysregs.event_sink = ct
        if cfg.events or cfg.interval:
            # interval sampling also needs the hook: the dcache's own
            # counters live outside the per-core stats subtree
            core.dcache.event_hook = ct.on_dcache_miss
        if cfg.events and getattr(core, "fault_hook", None) is not None:
            core.fault_hook.event_sink = ct
        if cfg.interval:
            ct.sampler = IntervalSampler(cfg.interval, core.stats,
                                         core_id=core.core_id,
                                         extra=ct.collect)
        self.cores.append(ct)
        return ct

    def finalize(self) -> None:
        """Close open run segments / residency spans and emit final samples."""
        for ct in self.cores:
            ct.finalize(int(ct.core.commit_tail))

    # -- artifacts ---------------------------------------------------------
    @property
    def event_count(self) -> int:
        return len(self.events) if self.events is not None else 0

    def interval_rows(self) -> List[Dict]:
        return merge_rows([ct.sampler for ct in self.cores
                           if ct.sampler is not None])

    def metrics_jsonl(self) -> str:
        """All cores' interval rows as deterministic JSON lines."""
        rows = self.interval_rows()
        if not rows:
            return ""
        return "\n".join(json.dumps(r, sort_keys=True) for r in rows) + "\n"

    def write_metrics_jsonl(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.metrics_jsonl())

    def chrome_trace(self, metadata: Optional[dict] = None) -> Optional[dict]:
        if self.events is None:
            return None
        return self.events.chrome_trace(metadata)

    def write_chrome_trace(self, path: str,
                           metadata: Optional[dict] = None) -> None:
        trace = self.chrome_trace(metadata)
        if trace is None:
            raise ValueError("event tracing was not enabled for this run")
        with open(path, "w") as f:
            json.dump(trace, f, sort_keys=True)

    # -- terminal report ---------------------------------------------------
    def report(self) -> str:
        """Human-readable summary of everything the session collected."""
        lines = ["telemetry report", "================"]
        if self.events is not None:
            lines.append(f"events: {len(self.events)} recorded "
                         f"({self.events.dropped} overwritten)")
            for name in sorted(self.events.counts):
                lines.append(f"  {name:<14} {self.events.counts[name]}")
        for ct in self.cores:
            probe = ct.vrmu_probe
            if probe is not None:
                s = probe.summary()
                lines.append(f"core {ct.pid} vrmu:")
                hr = s["hit_rate"]
                lines.append(f"  hit rate {hr:.2%} "
                             f"({s['hits']} hits / {s['misses']} misses)"
                             if hr is not None else "  no register traffic")
                if s["eviction_causes"]:
                    causes = ", ".join(f"{k}={v}" for k, v in
                                       s["eviction_causes"].items())
                    lines.append(f"  eviction causes: {causes}")
                if s["residency_hist_log2"]:
                    buckets = " ".join(
                        f"2^{k}:{v}" for k, v in
                        s["residency_hist_log2"].items())
                    lines.append(f"  residency histogram (cycles): {buckets}")
                if s["peak_occupancy"]:
                    peaks = ", ".join(f"t{k}={v}" for k, v in
                                      s["peak_occupancy"].items())
                    lines.append(f"  peak occupancy: {peaks}")
            tracer = getattr(ct.core, "tracer", None)
            if tracer is not None:
                st = tracer.stall_summary()
                lines.append(
                    f"core {ct.pid} pipeline stalls (last "
                    f"{st['instructions']} instructions): "
                    f"mem {st['mem_stall_cycles']:.0f} cycles "
                    f"({st['mem_stall_per_inst']:.2f}/inst), "
                    f"regs {st['reg_stall_cycles']:.0f} "
                    f"({st['reg_stall_per_inst']:.2f}/inst)")
        rows = self.interval_rows()
        if rows:
            lines.append(f"interval samples: {len(rows)} rows "
                         f"(interval {self.config.interval} cycles)")
        return "\n".join(lines)


# -- driver wiring (self-registration into the system plugin registry) ----
from ..system.plugins import SubsystemPlugin, register as _register_plugin


def _plugin_enabled(cfg) -> bool:
    return (cfg.telemetry is not None
            and TelemetryConfig.from_spec(cfg.telemetry).enabled)


def _plugin_wire(cfg, node, instances):
    """Attach a TelemetrySession when the config asks for one.

    Strictly opt-in, and purely observational even when on: cycle counts
    with telemetry enabled are identical to a run without it (enforced by
    tests/telemetry/test_noop.py).  Wired *after* fault injection (plugin
    order) so fault events reach the session's event ring.
    """
    if not _plugin_enabled(cfg):
        return None
    session = TelemetrySession(TelemetryConfig.from_spec(cfg.telemetry))
    for core in node.cores:
        session.attach(core)
    return session


PLUGIN = _register_plugin(SubsystemPlugin(
    name="telemetry",
    enabled=_plugin_enabled,
    wire=_plugin_wire,
    finalize=lambda session: session.finalize(),
    ooo_error=("telemetry is not modelled for the ooo host core "
               "(it does not run on the timeline engine)"),
    order=20,
))
