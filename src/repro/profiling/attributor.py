"""Top-down cycle attribution off the timeline engine's stage timestamps.

The engine computes, for every committed instruction, the exact cycle each
pipeline stage released it: decode entry ``t_d``, operand readiness
``t_ops``, register residency ``t_regs`` (the VRMU hook), execute
completion ``t_ex_done``, data availability ``data_at``, and the in-order
commit cycle ``t_c``.  Those bounds are monotone non-decreasing, and
``t_c = max(prev_commit + 1, data_at)``, so the half-open commit-clock
interval ``(prev_commit, t_c]`` can be tiled *exactly* by a clamped cursor
walk over the bounds — each sub-interval charged to the stage that was the
binding constraint there.  Summed over all commits the attribution covers
``commit_tail`` with no gaps and no overlaps, which is the hard invariant
:meth:`CycleAttributor.verify` enforces:
``sum(per-cause cycles) == core cycles``, always, on every core type.

Cycles outside any instruction (scheduler drain, idle waits for a runnable
thread, context-switch overhead, BSI-busy holds, software save/restore)
arrive as *pending boundary markers* posted by the scheduler hooks in
:meth:`TimelineCore._schedule` / ``_handle_miss_switch`` /
``SoftwareSwitchCore.switch_in``; they are consumed at the next commit,
charged to the sentinel PC :data:`SCHEDULER_PC`.

This is the top-down accounting style of the GPGPU register-file-cache
characterization literature, applied to the paper's Figure 9/10 question:
*which* cause the banked/swctx/virec gap comes from (switch overhead,
spill writebacks, VRMU refills), not just that it exists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AttributionError
from .config import ProfileConfig

__all__ = ["CAUSES", "CycleAttributor", "SCHEDULER_PC"]

#: the exhaustive taxonomy, in display order.  Every commit-clock cycle of
#: a run lands in exactly one bucket.
CAUSES = (
    "retire",           # the commit slot itself (1 cycle per instruction)
    "frontend",         # fetch/decode occupancy, redirect bubbles
    "icache_miss",      # fetch held by an icache miss
    "dependency",       # operand/flag scoreboard wait
    "vrmu_refill",      # register residency wait (VRMU fill port, Fig 10)
    "spill_writeback",  # spill-held register port / BSI-busy switch hold
                        # / software context save
    "execute",          # EX pipe occupancy + latency
    "load_hit",         # dcache-hit load latency
    "load_miss",        # dcache-miss load latency exposed at commit
    "store_queue",      # store-queue-full backpressure
    "switch",           # context-switch drain/flush/refill/restore
    "idle",             # no runnable thread (offload stagger, all blocked)
)

_INDEX = {name: i for i, name in enumerate(CAUSES)}
_RETIRE = _INDEX["retire"]
_FRONTEND = _INDEX["frontend"]
_ICACHE_MISS = _INDEX["icache_miss"]
_DEPENDENCY = _INDEX["dependency"]
_VRMU_REFILL = _INDEX["vrmu_refill"]
_SPILL_WRITEBACK = _INDEX["spill_writeback"]
_EXECUTE = _INDEX["execute"]
_LOAD_HIT = _INDEX["load_hit"]
_LOAD_MISS = _INDEX["load_miss"]
_STORE_QUEUE = _INDEX["store_queue"]
_SWITCH = _INDEX["switch"]
_IDLE = _INDEX["idle"]

#: sentinel PC for cycles spent outside any instruction (scheduler time)
SCHEDULER_PC = -1


class CycleAttributor:
    """Per-core bus instrument: classifies every commit-clock cycle.

    Rides the :class:`~repro.core.instrument.InstrumentBus` ``profile``
    slot, dispatched after metrics and before the sanitizer.  Purely
    observational — it reads the stage timestamps the engine already
    computed, never adjusts one.
    """

    __slots__ = ("core", "config", "cursor", "totals", "by_thread", "by_pc",
                 "_pending", "samples", "_next_sample", "_sample_cycles")

    def __init__(self, core, config: Optional[ProfileConfig] = None) -> None:
        self.core = core
        self.config = config or ProfileConfig()
        #: last commit-clock cycle already accounted for
        self.cursor = 0
        self.totals: List[int] = [0] * len(CAUSES)
        self.by_thread: Dict[int, List[int]] = {}
        self.by_pc: Optional[Dict[int, List[int]]] = (
            {} if self.config.by_pc else None)
        #: scheduler boundary markers awaiting the next commit:
        #: ``(end_cycle, cause_index, tid)`` in monotone end order
        self._pending: List[Tuple[int, int, int]] = []
        self._sample_cycles = self.config.sample_cycles
        self._next_sample = self._sample_cycles or None
        #: ``(cycle, totals tuple)`` counter-track samples
        self.samples: List[Tuple[int, Tuple[int, ...]]] = []

    # ------------------------------------------------------------- charging
    def _charge(self, tid: int, pc: int, cause: int, n: int) -> None:
        self.totals[cause] += n
        row = self.by_thread.get(tid)
        if row is None:
            row = self.by_thread[tid] = [0] * len(CAUSES)
        row[cause] += n
        by_pc = self.by_pc
        if by_pc is not None:
            prow = by_pc.get(pc)
            if prow is None:
                prow = by_pc[pc] = [0] * len(CAUSES)
            prow[cause] += n

    # ------------------------------------------------- scheduler-time hooks
    def on_schedule(self, tid: int, t_req: int, t_sched: int) -> None:
        """Switch requested at ``t_req``; thread picked at ``t_sched``."""
        self._pending.append((t_req, _SWITCH, tid))
        if t_sched > t_req:
            self._pending.append((t_sched, _IDLE, tid))

    def on_switch_in(self, tid: int, t_fetch: int) -> None:
        """Switch-in complete: first fetch possible at ``t_fetch``."""
        self._pending.append((t_fetch, _SWITCH, tid))

    def on_switch_hold(self, tid: int, t_from: int, t_to: int) -> None:
        """A pending switch held ``(t_from, t_to]`` by spill writebacks."""
        self._pending.append((t_from, _SWITCH, tid))
        if t_to > t_from:
            self._pending.append((t_to, _SPILL_WRITEBACK, tid))

    def on_spill_window(self, tid: int, t_to: int) -> None:
        """Software context-save traffic finished at ``t_to``."""
        self._pending.append((t_to, _SPILL_WRITEBACK, tid))

    # -------------------------------------------------------- commit hooks
    def on_commit_timing(self, tid: int, pc: int, d, t_d: int, t_ops: int,
                         t_regs: int, t_ex_done: int, data_at: int, t_c: int,
                         icache_missed: bool, load_missed: bool,
                         spill_wait: int = 0) -> None:
        """Tile ``(cursor, t_c]`` for one TimelineCore commit."""
        cur = self.cursor
        limit = t_c - 1
        pending = self._pending
        if pending:
            for end, cause, ptid in pending:
                e = end if end < limit else limit
                if e > cur:
                    self._charge(ptid, SCHEDULER_PC, cause, e - cur)
                    cur = e
            del pending[:]

        t_dp1 = t_d + 1
        if t_regs > t_ops and t_regs > t_dp1:
            decode_cause = _VRMU_REFILL
        elif t_ops > t_dp1:
            decode_cause = _DEPENDENCY
        else:
            decode_cause = _FRONTEND
        t_issue = t_dp1
        if t_ops > t_issue:
            t_issue = t_ops
        if t_regs > t_issue:
            t_issue = t_regs
        if d.is_load:
            mem_cause = _LOAD_MISS if load_missed else _LOAD_HIT
        elif d.is_store:
            mem_cause = _STORE_QUEUE
        else:
            mem_cause = _EXECUTE

        if decode_cause == _VRMU_REFILL and spill_wait > 0:
            # the port wait happens at the head of the VRMU access: carve
            # the spill-occupancy slice off the refill tile (same total —
            # the cursor walk still covers (prev_commit, t_c] exactly)
            split = t_d + spill_wait
            decode_tiles = ((split if split < t_issue else t_issue,
                             _SPILL_WRITEBACK), (t_issue, _VRMU_REFILL))
        else:
            decode_tiles = ((t_issue, decode_cause),)
        for end, cause in ((t_d, _ICACHE_MISS if icache_missed else _FRONTEND),
                           *decode_tiles,
                           (t_ex_done, _EXECUTE),
                           (data_at, mem_cause),
                           (limit, mem_cause)):
            e = end if end < limit else limit
            if e > cur:
                self._charge(tid, pc, cause, e - cur)
                cur = e
        self._charge(tid, pc, _RETIRE, 1)
        self.cursor = t_c
        if self._next_sample is not None and t_c >= self._next_sample:
            self._sample(t_c)

    def on_barrel_commit(self, tid: int, pc: int, d, t_issue: int,
                         t_ex_done: int, data_at: int, t_c: int,
                         load_missed: bool) -> None:
        """Tile ``(cursor, t_c]`` for one FGMT barrel commit.

        Barrel commits interleave all threads on one commit clock and pay
        no switch cost, so there is no pending-marker mechanism: issue
        waits (including the idealized context-fetch startup) account as
        ``dependency``, the rest off the instruction bounds.
        """
        cur = self.cursor
        limit = t_c - 1
        if d.is_load:
            mem_cause = _LOAD_MISS if load_missed else _LOAD_HIT
        elif d.is_store:
            mem_cause = _STORE_QUEUE
        else:
            mem_cause = _EXECUTE
        for end, cause in ((t_issue, _DEPENDENCY),
                           (t_ex_done, _EXECUTE),
                           (data_at, mem_cause),
                           (limit, mem_cause)):
            e = end if end < limit else limit
            if e > cur:
                self._charge(tid, pc, cause, e - cur)
                cur = e
        self._charge(tid, pc, _RETIRE, 1)
        self.cursor = t_c
        if self._next_sample is not None and t_c >= self._next_sample:
            self._sample(t_c)

    def _sample(self, t_c: int) -> None:
        self.samples.append((t_c, tuple(self.totals)))
        step = self._sample_cycles
        nxt = self._next_sample
        self._next_sample = nxt + ((t_c - nxt) // step + 1) * step

    # ------------------------------------------------------------ invariant
    @property
    def attributed(self) -> int:
        return sum(self.totals)

    def verify(self) -> None:
        """Enforce ``sum(attributed cycles) == commit clock`` for this core."""
        total = self.attributed
        cycles = int(self.core.commit_tail)
        if total != cycles:
            raise AttributionError(
                f"cycle attribution does not balance on core "
                f"{self.core.core_id}: attributed {total} != cycles {cycles}"
                f" (delta {total - cycles:+d})",
                core_id=self.core.core_id, attributed=total, cycles=cycles)

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> dict:
        """Plain-data form (deterministic, pickles/JSON-serializes)."""
        snap = {
            "core": int(self.core.core_id),
            "cycles": int(self.core.commit_tail),
            "causes": {CAUSES[i]: v for i, v in enumerate(self.totals) if v},
            "threads": {
                str(tid): {CAUSES[i]: v for i, v in enumerate(row) if v}
                for tid, row in sorted(self.by_thread.items())},
        }
        if self.by_pc is not None:
            snap["pcs"] = {
                str(pc): {CAUSES[i]: v for i, v in enumerate(row) if v}
                for pc, row in sorted(self.by_pc.items())}
        return snap
