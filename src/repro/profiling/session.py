"""Profile session: wiring, artifacts, and diff views over attributions.

One :class:`ProfileSession` owns the per-core
:class:`~repro.profiling.attributor.CycleAttributor` instruments of a run
and folds them into the artifacts the tooling consumes:

* :meth:`snapshot` — plain-data attribution (per-cause / per-thread /
  per-PC), the form that ships across process boundaries and lands in
  ``profile.json``;
* :meth:`hotspots` — per-PC table mapped back through the assembler's
  label/text tables to kernel source lines;
* :meth:`collapsed` — Brendan Gregg folded-stack lines (loadable in
  speedscope or flamegraph.pl);
* :meth:`finalize` — merges per-cause counter-track samples into the
  run's telemetry :class:`~repro.telemetry.events.EventTracer` (Chrome
  ``ph:"C"`` counter events) when event tracing is also on.

:func:`diff_snapshots` implements the ``repro profile --diff`` view: the
per-cause and per-PC cycle deltas between two runs (e.g. banked vs virec),
which is the one-command explanation of the Fig 9/10 gaps.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .attributor import CAUSES, CycleAttributor, SCHEDULER_PC
from .config import ProfileConfig

__all__ = ["ProfileSession", "diff_snapshots", "merge_cause_totals"]


def _label_map(program) -> Dict[int, str]:
    """pc -> nearest preceding label name (assembler source mapping)."""
    out: Dict[int, str] = {}
    if not getattr(program, "labels", None):
        return out
    ordered = sorted(program.labels.items(), key=lambda kv: (kv[1], kv[0]))
    current = None
    idx = 0
    for pc in range(len(program)):
        while idx < len(ordered) and ordered[idx][1] <= pc:
            current = ordered[idx][0]
            idx += 1
        if current is not None:
            out[pc] = current
    return out


class ProfileSession:
    """All cycle-attribution state of one simulation run."""

    def __init__(self, config: Optional[ProfileConfig] = None) -> None:
        self.config = config or ProfileConfig()
        self.attributors: List[CycleAttributor] = []

    # -- wiring ------------------------------------------------------------
    def attach(self, core) -> CycleAttributor:
        """Wire one core's ``profile`` bus slot to this session."""
        attributor = CycleAttributor(core, self.config)
        core.profile = attributor  # property: sets the bus slot, recompiles
        self.attributors.append(attributor)
        return attributor

    def verify(self) -> None:
        """Enforce the attribution-sum invariant on every core (may raise)."""
        for attributor in self.attributors:
            attributor.verify()

    def finalize(self) -> None:
        """Merge counter-track samples into the telemetry event tracer."""
        for attributor in self.attributors:
            if not self.config.sample_cycles:
                continue
            core = attributor.core
            telemetry = core.bus.telemetry
            events = getattr(telemetry, "events", None)
            if events is None:
                continue
            from ..telemetry.events import PROFILE_TRACK
            prev = (0,) * len(CAUSES)
            # one closing sample at the commit clock's end so the track
            # integrates to exactly the attributed total
            samples = list(attributor.samples)
            final = tuple(attributor.totals)
            if final != (samples[-1][1] if samples else prev):
                samples.append((int(core.commit_tail), final))
            for t_c, totals in samples:
                deltas = {CAUSES[i]: totals[i] - prev[i]
                          for i in range(len(CAUSES))
                          if totals[i] != prev[i]}
                events.emit("cycle_causes", "C", t_c, core.core_id,
                            PROFILE_TRACK, args=deltas)
                prev = totals

    # -- plain-data artifacts ---------------------------------------------
    @property
    def cycles(self) -> int:
        """Run cycles: the slowest core's commit clock (NodeResult rule)."""
        return max((int(a.core.commit_tail) for a in self.attributors),
                   default=0)

    def snapshot(self) -> dict:
        """Deterministic JSON value (ships across process boundaries)."""
        cores = [a.snapshot() for a in self.attributors]
        return {
            "taxonomy": list(CAUSES),
            "cycles": self.cycles,
            "causes": merge_cause_totals(cores),
            "cores": cores,
            "hotspots": self.hotspots(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.snapshot(), f, indent=1, sort_keys=True)
            f.write("\n")

    # -- source-mapped views ----------------------------------------------
    def hotspots(self, top: Optional[int] = None) -> List[dict]:
        """Per-PC rows mapped to kernel source, hottest first.

        Each row carries the core id, pc, nearest preceding label, the
        assembler source text, total attributed cycles, and the per-cause
        breakdown.  Scheduler time appears as one ``<scheduler>`` row per
        core.  ``top=None`` returns every row.
        """
        rows = []
        for attributor in self.attributors:
            if attributor.by_pc is None:
                continue
            core = attributor.core
            labels = _label_map(core.program)
            for pc, counts in attributor.by_pc.items():
                total = sum(counts)
                if not total:
                    continue
                if pc == SCHEDULER_PC:
                    label, text = "<scheduler>", "<scheduler>"
                else:
                    inst = core.program[pc]
                    label = labels.get(pc, core.program.name)
                    text = inst.text or inst.opcode.name.lower()
                rows.append({
                    "core": int(core.core_id), "pc": int(pc),
                    "label": label, "text": text, "cycles": total,
                    "causes": {CAUSES[i]: v for i, v in enumerate(counts)
                               if v},
                })
        rows.sort(key=lambda r: (-r["cycles"], r["core"], r["pc"]))
        return rows[:top] if top is not None else rows

    def collapsed(self) -> str:
        """Folded-stack flamegraph lines (Brendan Gregg collapsed format).

        Stack frames: ``core<id>;<label>;<pc: text>;<cause> <cycles>``.
        Spaces inside instruction text are folded to ``_`` so the trailing
        count separator stays unambiguous for strict parsers.
        """
        lines = []
        for attributor in self.attributors:
            if attributor.by_pc is None:
                continue
            core = attributor.core
            labels = _label_map(core.program)
            prefix = f"core{core.core_id}"
            for pc in sorted(attributor.by_pc):
                counts = attributor.by_pc[pc]
                if pc == SCHEDULER_PC:
                    frames = f"{prefix};<scheduler>"
                else:
                    inst = core.program[pc]
                    text = (inst.text or inst.opcode.name.lower())
                    text = text.replace(" ", "_").replace(";", ",")
                    label = labels.get(pc, core.program.name)
                    frames = f"{prefix};{label};pc{pc}:{text}"
                for i, n in enumerate(counts):
                    if n:
                        lines.append(f"{frames};{CAUSES[i]} {n}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.collapsed())


# -- cross-run folding and diffs -------------------------------------------
def merge_cause_totals(cores: List[dict]) -> Dict[str, int]:
    """Sum per-cause cycles across per-core snapshot dicts."""
    out: Dict[str, int] = {}
    for core in cores:
        for cause, n in core.get("causes", {}).items():
            out[cause] = out.get(cause, 0) + n
    return out


def diff_snapshots(base: dict, other: dict) -> dict:
    """Per-cause and per-PC cycle deltas between two attribution snapshots.

    ``delta = other - base`` per cause, so a positive entry reads "the
    second config spends this many more cycles on that cause".  Per-PC
    deltas fold every core's table by pc (the configs may differ in core
    count).  ``dominant`` lists causes by absolute delta, largest first.
    """
    causes = sorted(set(base.get("causes", {})) | set(other.get("causes", {})))
    by_cause = {c: other.get("causes", {}).get(c, 0)
                - base.get("causes", {}).get(c, 0) for c in causes}

    def _fold_pcs(snap: dict) -> Dict[int, int]:
        folded: Dict[int, int] = {}
        for core in snap.get("cores", []):
            for pc, row in core.get("pcs", {}).items():
                folded[int(pc)] = folded.get(int(pc), 0) + sum(row.values())
        return folded

    pcs_base, pcs_other = _fold_pcs(base), _fold_pcs(other)
    by_pc = {pc: pcs_other.get(pc, 0) - pcs_base.get(pc, 0)
             for pc in sorted(set(pcs_base) | set(pcs_other))}
    return {
        "cycles_base": base.get("cycles", 0),
        "cycles_other": other.get("cycles", 0),
        "cycles_delta": other.get("cycles", 0) - base.get("cycles", 0),
        "by_cause": by_cause,
        "by_pc": {str(pc): d for pc, d in by_pc.items() if d},
        "dominant": [c for c, d in sorted(by_cause.items(),
                                          key=lambda kv: -abs(kv[1])) if d],
    }
