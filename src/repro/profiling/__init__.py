"""Top-down cycle accounting: per-cause, per-thread, per-PC attribution.

``repro.profiling`` answers *where the cycles go*.  Where the flat stall
counters (``icache_miss_stalls``, ``load_miss_stalls``, ...) count events,
the :class:`CycleAttributor` classifies **every** commit-clock cycle of a
run into an exhaustive top-down taxonomy (:data:`CAUSES`) — retire,
frontend, icache miss, dependency, VRMU refill, spill writeback, execute,
load hit/miss, store-queue full, switch overhead, idle — with the hard
invariant ``sum(attributed cycles) == total cycles`` enforced per run.

Attachment mirrors the metrics subsystem: ``RunConfig(profile=...)`` wires
a :class:`ProfileSession` whose attributors ride the core's
:class:`~repro.core.instrument.InstrumentBus` ``profile`` slot — strictly
opt-in, purely observational, cycle-identical to a profile-off run.  The
``repro profile`` CLI verb layers hotspot listings, folded-stack
flamegraph export, and a two-config ``--diff`` view on top.
"""

from __future__ import annotations

from .attributor import CAUSES, CycleAttributor, SCHEDULER_PC
from .config import ProfileConfig
from .session import ProfileSession, diff_snapshots, merge_cause_totals

__all__ = ["CAUSES", "CycleAttributor", "ProfileConfig", "ProfileSession",
           "SCHEDULER_PC", "diff_snapshots", "merge_cause_totals"]


# -- driver wiring (self-registration into the system plugin registry) ----
from ..system.plugins import SubsystemPlugin, register as _register_plugin


def _plugin_enabled(cfg) -> bool:
    spec = getattr(cfg, "profile", None)
    return spec is not None and ProfileConfig.from_spec(spec).enabled


def _plugin_wire(cfg, node, instances):
    """Attach a ProfileSession when the config asks for one.

    Strictly opt-in; wired after metrics (order 27) so profile dispatch on
    the bus matches the registry order, and before the sanitizer.
    """
    if not _plugin_enabled(cfg):
        return None
    session = ProfileSession(ProfileConfig.from_spec(cfg.profile))
    for core in node.cores:
        session.attach(core)
    return session


def _plugin_finalize_simulate(session, node_result) -> None:
    """Enforce the attribution-sum invariant (raises AttributionError)."""
    session.verify()


PLUGIN = _register_plugin(SubsystemPlugin(
    name="profile",
    enabled=_plugin_enabled,
    wire=_plugin_wire,
    finalize_simulate=_plugin_finalize_simulate,
    finalize=lambda session: session.finalize(),
    ooo_error=("cycle attribution is not modelled for the ooo host core "
               "(it does not run on the timeline engine; see its "
               "cycle_causes stats child for its own accounting)"),
    order=27,
))
