"""Profiling campaign description (safe to embed in a RunConfig).

Mirrors the metrics subsystem's opt-in discipline: ``RunConfig(profile=...)``
takes a :class:`ProfileConfig` (or a dict of its fields, or ``True`` for
the defaults); with the field left ``None`` nothing is wired — the engine
runs its compiled uninstrumented fast path and runs are bit-identical to a
build without this package.  The attributor is purely observational: it
classifies the commit-clock cycles the engine already computed but never
alters a timestamp, and ``profile=None`` is excluded from config/manifest
digests so pre-existing digests and checkpoint-journal keys stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class ProfileConfig:
    """What the cycle attributor records."""

    #: classify every commit-clock cycle into the top-down taxonomy
    #: (per-cause and per-thread totals); False makes the config inert
    attribution: bool = True
    #: also accumulate the per-PC table behind hotspot listings and the
    #: folded-stack flamegraph export (small extra memory per static PC)
    by_pc: bool = True
    #: Chrome counter-track sample period in commit-clock cycles; samples
    #: merge into the run's telemetry :class:`EventTracer` when event
    #: tracing is also enabled.  0 disables sampling.
    sample_cycles: int = 512

    def __post_init__(self) -> None:
        if self.sample_cycles < 0:
            raise ValueError("sample_cycles must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when the attributor would actually be wired."""
        return self.attribution

    @classmethod
    def from_spec(cls, spec) -> "ProfileConfig":
        """Build from a ProfileConfig, a dict of its fields, True, or None."""
        if spec is None:
            return cls(attribution=False, by_pc=False, sample_cycles=0)
        if spec is True:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            known = {f.name for f in fields(cls)}
            unknown = set(spec) - known
            if unknown:
                raise ValueError(
                    f"unknown profile field(s) {sorted(unknown)}; "
                    f"choose from {sorted(known)}")
            return cls(**spec)
        raise TypeError(f"profile spec must be a ProfileConfig, dict, True, "
                        f"or None, not {type(spec).__name__}")

    def with_(self, **kw) -> "ProfileConfig":
        return replace(self, **kw)
