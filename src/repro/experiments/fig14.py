"""Figure 14 + Section 6.2 delay analysis: area versus thread count.

Pure area-model experiment (no simulation): banked cores with 64 registers
per bank versus ViReC cores provisioned with 5-64 register-cache entries per
thread, across 1-16 threads, plus the RF access-delay comparison.
"""

from __future__ import annotations

from ..area import (
    area_table,
    banked_core_area,
    inorder_core_area,
    rf_delay_ns,
    virec_breakdown,
    virec_core_area,
)
from .common import ExperimentResult


def run(scale="quick") -> ExperimentResult:
    """Reproduce Figure 14 and the Section 6.2 delay table (area model)."""
    rows = [dict(r) for r in area_table(max_threads=16,
                                        regs_per_thread_options=(5, 8, 16, 32, 64))]

    # headline derived quantities
    saving_8t = 1 - virec_core_area(64) / banked_core_area(8)
    overhead = virec_core_area(64) / inorder_core_area() - 1
    rows.append({"threads": "--", "banked_mm2": "",
                 "virec_8_regs_mm2": "",
                 "headline": f"ViReC(64) saves {saving_8t * 100:.1f}% vs banked-8T; "
                             f"+{overhead * 100:.1f}% over baseline core"})

    # delay rows (Section 6.2)
    for regs in (24, 48, 80, 120, 200):
        rows.append({"threads": f"delay@{regs}",
                     "virec_delay_ns": rf_delay_ns("virec", regs),
                     "banked_delay_ns": rf_delay_ns("banked"),
                     "baseline_delay_ns": rf_delay_ns("baseline")})

    b = virec_breakdown(64)
    notes = ("virec_N_regs = N register-cache entries per thread; breakdown @64: "
             f"data={b['data_array_mm2']:.3f} tag={b['tag_store_mm2']:.3f} "
             f"rollback+logic={b['rollback_and_logic_mm2']:.3f} mm2")
    return ExperimentResult(experiment="fig14",
                            title="area vs threads; RF delay", rows=rows,
                            notes=notes)
