"""Figure 13: backing-store (dcache) latency and capacity sensitivity.

Left panel: sweep the dcache hit latency with a single 8-thread processor;
ViReC degrades faster than banked because register fills ride the dcache.
Right panel: sweep the dcache capacity; ViReC's pinned register lines
consume capacity, so it thrashes earlier than a banked core.  Reports the
geometric-mean IPC across the workload suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..system import RunConfig, run_config
from .common import SUITE, ExperimentResult, geomean, scale_to_n

LATENCIES = (1, 2, 4, 8, 16)
CAPACITIES_KB = (2, 4, 8, 16, 32)


def run(scale="quick", workloads: Sequence[str] = SUITE,
        latencies: Sequence[int] = LATENCIES,
        capacities_kb: Sequence[int] = CAPACITIES_KB,
        n_threads: int = 8) -> ExperimentResult:
    """Reproduce Figure 13 (dcache latency/capacity sensitivity)."""
    n = scale_to_n(scale)
    rows: List[Dict] = []

    def gmean_ipc(core_type: str, **kw) -> float:
        vals = []
        for w in workloads:
            cfg = RunConfig(workload=w, core_type=core_type,
                            n_threads=n_threads, n_per_thread=n,
                            context_fraction=0.8, **kw)
            vals.append(run_config(cfg).ipc)
        return geomean(vals)

    for lat in latencies:
        rows.append({"sweep": "latency", "value": lat,
                     "virec_ipc": gmean_ipc("virec", dcache_latency=lat),
                     "banked_ipc": gmean_ipc("banked", dcache_latency=lat)})
    for kb in capacities_kb:
        rows.append({"sweep": "capacity_kb", "value": kb,
                     "virec_ipc": gmean_ipc("virec", dcache_kb=kb),
                     "banked_ipc": gmean_ipc("banked", dcache_kb=kb)})

    return ExperimentResult(
        experiment="fig13", title="dcache latency and capacity sweep "
                                  "(geomean IPC across suite)",
        rows=rows,
        notes="ViReC uses the dcache as register backing store, so it is "
              "more sensitive to both knobs than the banked design")
