"""Ablation study of ViReC's design choices (beyond the paper's figures).

Starting from the full ViReC design at 60% context (mid contention), each
row disables one mechanism the paper describes — register-line pinning,
the dummy-fill destination optimization, the non-blocking BSI, the
system-register ping-pong buffer, the LRC commit bit — and two rows *add*
the future-work extensions (group evictions, next-context prefetch).
Reported as geomean slowdown vs the full design across the suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .. import workloads as wl
from ..core.base import ThreadState
from ..errors import FunctionalCheckError
from ..memory.hierarchy import NDPMemorySystem
from ..stats.counters import Stats
from ..system.config import RunConfig, ndp_dcache, ndp_icache, table1_dram
from ..system.offload import offload_contexts
from ..virec import ViReCConfig, ViReCCore
from .common import SUITE, ExperimentResult, geomean, scale_to_n

VARIANTS: Dict[str, Dict] = {
    "full": {},
    "no_pinning": {"pinning": False},
    "no_dummy_fill": {"dummy_fill": False},
    "blocking_bsi": {"blocking_bsi": True},
    "no_sysreg_buffer": {"sysreg_buffer": False},
    "plru_policy": {"policy": "plru"},
    "mrt_plru_policy": {"policy": "mrt-plru"},
    "group_evict_3": {"group_evict": 3},
    "context_prefetch": {"context_prefetch": True},
}


def _run_variant(workload: str, n: int, n_threads: int, overrides: Dict,
                 seed: int = 7) -> int:
    inst = wl.get(workload).build(n_threads=n_threads, n_per_thread=n,
                                  seed=seed)
    stats = Stats("ablate")
    memsys = NDPMemorySystem(n_cores=1, dcache=ndp_dcache(), icache=ndp_icache(),
                             dram=table1_dram(), stats=stats.child("mem"))
    ports = memsys.ports(0)
    threads = inst.threads()
    layout = inst.layout()
    offload_contexts(inst.memory, layout, threads, inst.init_regs)
    for th in threads:
        th.state = ThreadState.BLOCKED
    rf = max(8, round(0.6 * n_threads * len(inst.active_regs)))
    vc = ViReCConfig(rf_size=rf, **overrides)
    core = ViReCCore(inst.program, ports.icache, ports.dcache, inst.memory,
                     threads, virec=vc, layout=layout,
                     stats=stats.child("core"))
    result = core.run()
    if not inst.check():
        raise FunctionalCheckError(f"{workload} wrong under {overrides}")
    return int(result["cycles"])


def run(scale="quick", workloads_: Sequence[str] = SUITE,
        n_threads: int = 8,
        variants: Sequence[str] = tuple(VARIANTS)) -> ExperimentResult:
    """Run the ablation sweep; returns slowdown-vs-full rows."""
    n = scale_to_n(scale)
    rows: List[Dict] = []
    per_variant: Dict[str, List[float]] = {v: [] for v in variants}
    for workload in workloads_:
        base = _run_variant(workload, n, n_threads, VARIANTS["full"])
        row = {"workload": workload, "full_cycles": base}
        for variant in variants:
            if variant == "full":
                continue
            cycles = _run_variant(workload, n, n_threads, VARIANTS[variant])
            slowdown = cycles / base
            row[variant] = slowdown
            per_variant[variant].append(slowdown)
        rows.append(row)
    mean = {"workload": "GEOMEAN", "full_cycles": 0}
    for variant in variants:
        if variant == "full":
            continue
        mean[variant] = geomean(per_variant[variant])
    rows.append(mean)
    return ExperimentResult(
        experiment="ablation",
        title="ViReC design ablations (slowdown vs full design, >1 = worse)",
        rows=rows,
        notes="each column removes one mechanism (or adds a future-work "
              "extension) at 60% context, 8 threads")
