"""Figure 10: performance-per-register tradeoff for gather.

Sweeps the number of scheduled threads; for each thread count, plots the
banked design plus ViReC at 40/60/80/100% context storage — performance
(inverse runtime for a fixed total amount of work) divided by the number of
physical registers provisioned.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import workloads as wl
from ..system import RunConfig
from .common import ExperimentResult, run_many, scale_to_n

FRACTIONS = (0.4, 0.6, 0.8, 1.0)


def run(scale="quick", workload: str = "gather",
        threads: Sequence[int] = (2, 4, 6, 8, 10),
        jobs: Optional[int] = None,
        cache: Optional[str] = None) -> ExperimentResult:
    """Reproduce Figure 10 (performance per register vs threads).

    ``cache`` serves repeated runs from a run ledger (see
    :class:`~repro.ledger.CachedBackend`) instead of re-simulating.
    """
    n = scale_to_n(scale)
    total = n * max(threads)
    active = len(wl.get(workload).build(n_threads=2, n_per_thread=4).active_regs)
    configs = []
    for t in threads:
        per_thread = max(4, total // t)
        base = RunConfig(workload=workload, n_threads=t, n_per_thread=per_thread)
        if t <= 8:
            configs.append(base.with_(core_type="banked"))
        for frac in FRACTIONS:
            configs.append(base.with_(core_type="virec",
                                      context_fraction=frac))
    rows = []
    for cfg, r in zip(configs, run_many(configs, jobs=jobs, cache=cache)):
        if cfg.core_type == "banked":
            regs = cfg.n_threads * 64
            rows.append({"threads": cfg.n_threads, "config": "banked",
                         "registers": regs, "cycles": r.cycles,
                         "perf": 1e6 / r.cycles,
                         "perf_per_reg": 1e6 / r.cycles / regs})
        else:
            regs = cfg.resolve_rf_size(active)
            rows.append({"threads": cfg.n_threads,
                         "config": f"virec{int(cfg.context_fraction * 100)}",
                         "registers": regs, "cycles": r.cycles,
                         "perf": 1e6 / r.cycles,
                         "perf_per_reg": 1e6 / r.cycles / regs,
                         "rf_hit_rate": r.rf_hit_rate})
    return ExperimentResult(
        experiment="fig10",
        title=f"performance per register, {workload} (fixed total work)",
        rows=rows,
        notes="perf = 1e6/cycles for the same total element count at every point")
