"""Figure 1: performance-area tradeoff on the gather kernel.

Points reproduced (normalized to the single in-order core):

* single InO processor;
* OoO host core (N1-class, 2 GHz, 19.1x area);
* 2/4/8 replicated InO processors (multi-core TLP, no multithreading);
* banked CGMT at 4 and 8 threads (256/512 registers);
* ViReC at 4 and 8 threads storing 40-100% of the active contexts.

Performance is total-work throughput (the same total element count is used
for every point) and area comes from :mod:`repro.area`.
"""

from __future__ import annotations

from ..area import (
    banked_core_area,
    inorder_core_area,
    multi_core_area,
    ooo_core_area,
    virec_core_area,
)
from ..system import RunConfig, run_config
from .common import ExperimentResult, scale_to_n

#: total elements processed by every configuration (threads x per-thread)
TOTAL_FACTOR = 8


def run(scale="quick", workload: str = "gather") -> ExperimentResult:
    """Reproduce Figure 1 (performance-area Pareto) at the given scale."""
    n_total = scale_to_n(scale) * TOTAL_FACTOR
    rows = []

    def add(label, cycles, area, extra=None):
        rows.append({"config": label, "cycles": cycles, "area_mm2": area,
                     **(extra or {})})

    # single InO
    base = run_config(RunConfig(workload=workload, core_type="inorder",
                                n_threads=1, n_per_thread=n_total))
    add("inorder-1", base.cycles, inorder_core_area())

    # OoO host
    ooo = run_config(RunConfig(workload=workload, core_type="ooo",
                               n_threads=1, n_per_thread=n_total))
    add("ooo", ooo.cycles, ooo_core_area())

    # replicated InO processors: per-core independent batches; the slowest
    # core bounds completion, approximated by an even work split
    for cores in (2, 4, 8):
        r = run_config(RunConfig(workload=workload, core_type="banked",
                                 n_threads=1, n_cores=cores,
                                 n_per_thread=n_total // cores))
        add(f"inorder-x{cores}", r.cycles,
            multi_core_area(inorder_core_area(), cores))

    # banked CGMT
    for threads in (4, 8):
        r = run_config(RunConfig(workload=workload, core_type="banked",
                                 n_threads=threads,
                                 n_per_thread=n_total // threads))
        add(f"banked-{threads}t", r.cycles, banked_core_area(threads))

    # ViReC sweeps
    for threads in (4, 8):
        for frac in (0.4, 0.6, 0.8, 1.0):
            cfg = RunConfig(workload=workload, core_type="virec",
                            n_threads=threads, n_per_thread=n_total // threads,
                            context_fraction=frac)
            r = run_config(cfg)
            rf = cfg.resolve_rf_size(_active_context(workload, threads))
            add(f"virec-{threads}t-{int(frac * 100)}%", r.cycles,
                virec_core_area(rf), {"rf_entries": rf,
                                      "rf_hit_rate": r.rf_hit_rate})

    # normalize speedups to the single InO
    base_cycles = rows[0]["cycles"]
    for row in rows:
        row["speedup"] = base_cycles / row["cycles"]
        row["perf_per_area"] = row["speedup"] / row["area_mm2"]

    return ExperimentResult(
        experiment="fig01", title=f"performance-area tradeoff ({workload})",
        rows=rows,
        notes="speedup normalized to a single in-order processor; same total work everywhere")


def _active_context(workload: str, n_threads: int) -> int:
    from .. import workloads as wl
    inst = wl.get(workload).build(n_threads=n_threads, n_per_thread=4)
    return len(inst.active_regs)
