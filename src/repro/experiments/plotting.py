"""Terminal plots for experiment results (no plotting dependency by design).

Renders the two chart shapes the paper's figures use — scatter
(performance vs area, Figure 1/10) and multi-series lines over a swept
parameter (Figures 9/11/12/13) — as ASCII, so ``python -m repro
experiments`` output can be eyeballed directly against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    return min(cells - 1, max(0, int((value - lo) / (hi - lo) * (cells - 1))))


def scatter(points: Dict[str, Tuple[float, float]], width: int = 64,
            height: int = 20, xlabel: str = "x", ylabel: str = "y",
            title: str = "") -> str:
    """Labelled scatter plot: ``points`` maps label -> (x, y).

    Each point gets a glyph; a legend maps glyphs back to labels.
    """
    if not points:
        return "(no points)"
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (label, (x, y)) in enumerate(points.items()):
        glyph = chr(ord("a") + i) if i < 26 else _GLYPHS[i % len(_GLYPHS)]
        col = _scale(x, xlo, xhi, width)
        row = height - 1 - _scale(y, ylo, yhi, height)
        grid[row][col] = glyph
        legend.append(f"  {glyph} = {label} ({x:.3g}, {y:.3g})")
    lines = [title] if title else []
    lines.append(f"{ylabel} ^  [{ylo:.3g} .. {yhi:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + f"> {xlabel}  [{xlo:.3g} .. {xhi:.3g}]")
    lines.extend(legend)
    return "\n".join(lines)


def lines(series: Dict[str, Sequence[float]], x: Sequence,
          width: int = 64, height: int = 16, xlabel: str = "x",
          ylabel: str = "y", title: str = "") -> str:
    """Multi-series line chart over shared x values."""
    if not series or not x:
        return "(no data)"
    all_vals = [v for vals in series.values() for v in vals]
    ylo, yhi = min(all_vals), max(all_vals)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (label, vals) in enumerate(series.items()):
        glyph = chr(ord("a") + i) if i < 26 else "#"
        legend.append(f"  {glyph} = {label}")
        for j, v in enumerate(vals):
            col = _scale(j, 0, max(1, len(vals) - 1), width)
            row = height - 1 - _scale(v, ylo, yhi, height)
            grid[row][col] = glyph
    out = [title] if title else []
    out.append(f"{ylabel} ^  [{ylo:.3g} .. {yhi:.3g}]")
    for row in grid:
        out.append("|" + "".join(row))
    xticks = "  ".join(str(v) for v in x)
    out.append("+" + "-" * width + f"> {xlabel}: {xticks}")
    out.extend(legend)
    return "\n".join(out)


def pareto_plot(result, perf_key: str = "speedup",
                area_key: str = "area_mm2") -> str:
    """ASCII rendition of the Figure 1 scatter from a fig01 result."""
    points = {row["config"]: (row[area_key], row[perf_key])
              for row in result.rows
              if area_key in row and perf_key in row}
    return scatter(points, xlabel="area [mm^2]", ylabel="speedup",
                   title=result.title)


def sweep_plot(result, x_key: str, series_keys: Sequence[str],
               row_filter=None) -> str:
    """Line chart of chosen columns over a swept column."""
    rows = [r for r in result.rows if (row_filter is None or row_filter(r))
            and all(k in r for k in series_keys) and x_key in r]
    xs = [r[x_key] for r in rows]
    series = {k: [r[k] for r in rows] for k in series_keys}
    return lines(series, xs, xlabel=x_key, ylabel="value", title=result.title)
