"""Per-figure experiment drivers (shared by benchmarks/ and examples/)."""

from . import (ablation, compiler_study, fault_study, fig01, sizing, fig02,
               fig09, fig10, fig11, fig12, fig13, fig14, throughput)
from .common import SUITE, ExperimentResult, geomean, scale_to_n

ALL_EXPERIMENTS = {
    "ablation": ablation.run,
    "compiler_study": compiler_study.run,
    "fault_study": fault_study.run,
    "fig01": fig01.run,
    "fig02": fig02.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "sizing": sizing.run,
    "throughput": throughput.run,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "SUITE", "ablation",
           "fault_study", "geomean", "scale_to_n", "fig01", "fig02", "fig09",
           "fig10", "fig11", "fig12", "fig13", "fig14", "throughput"]
