"""Compiler study: what do the two passes buy on the in-order cores?

Two sweeps across the suite (beyond the paper's figures, using the
§4.2-adjacent compiler support in :mod:`repro.compiler`):

* **scheduling** — list-scheduled vs original kernels on the banked core
  (load-shadow filling shortens single-thread critical paths, and the
  shorter run segments change CGMT behaviour);
* **regreduce on ViReC** — the §4.2 pass applied to an artificially
  register-rich gather (see ``tests/integration/test_regreduce_endtoend``
  for the micro version); here measured across context fractions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .. import workloads as wl
from ..compiler import schedule_program
from ..core.base import ThreadState
from ..core.cgmt import BankedCore
from ..errors import FunctionalCheckError
from ..memory.hierarchy import NDPMemorySystem
from ..stats.counters import Stats
from ..system.config import ndp_dcache, ndp_icache, table1_dram
from ..system.offload import offload_contexts
from ..virec import ViReCConfig, ViReCCore
from .common import SUITE, ExperimentResult, geomean, scale_to_n


def _run(instance, core_cls, program=None, core_kw=None) -> int:
    stats = Stats("study")
    memsys = NDPMemorySystem(n_cores=1, dcache=ndp_dcache(),
                             icache=ndp_icache(), dram=table1_dram(),
                             stats=stats.child("mem"))
    ports = memsys.ports(0)
    threads = instance.threads()
    layout = instance.layout()
    offload_contexts(instance.memory, layout, threads, instance.init_regs)
    for th in threads:
        th.state = ThreadState.BLOCKED
    prog = program if program is not None else instance.program
    core = core_cls(prog, ports.icache, ports.dcache, instance.memory,
                    threads, layout=layout, stats=stats.child("core"),
                    **(core_kw or {}))
    result = core.run()
    if not instance.check():
        raise FunctionalCheckError(
            f"{instance.name} wrong after scheduling")
    return int(result["cycles"])


def run(scale="quick", workloads_: Sequence[str] = SUITE,
        n_threads: int = 8) -> ExperimentResult:
    """Run the instruction-scheduling study across the suite."""
    n = scale_to_n(scale)
    rows: List[Dict] = []
    speedups = []
    moved_fracs = []
    for workload in workloads_:
        base_inst = wl.get(workload).build(n_threads=n_threads, n_per_thread=n)
        base = _run(base_inst, BankedCore)

        sched_inst = wl.get(workload).build(n_threads=n_threads, n_per_thread=n)
        sched = schedule_program(sched_inst.program)
        cycles = _run(sched_inst, BankedCore, program=sched.program)

        speedup = base / cycles
        moved = sched.moved_instructions / max(1, len(sched.program))
        speedups.append(speedup)
        moved_fracs.append(moved)
        rows.append({"workload": workload, "base_cycles": base,
                     "sched_cycles": cycles, "speedup": speedup,
                     "static_moved_%": 100.0 * moved})
    rows.append({"workload": "GEOMEAN", "base_cycles": 0, "sched_cycles": 0,
                 "speedup": geomean(speedups),
                 "static_moved_%": 100.0 * sum(moved_fracs) / len(moved_fracs)})
    return ExperimentResult(
        experiment="compiler_study",
        title="basic-block list scheduling on the banked CGMT core",
        rows=rows,
        notes="speedup >1 = scheduled kernel faster; near-memory kernels "
              "have tiny blocks, so gains are modest by construction")
