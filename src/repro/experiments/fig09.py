"""Figure 9: performance of ViReC vs banked, NSF, and RF prefetching.

For each workload and thread count (4/6/8), runs: the banked baseline,
ViReC at 40/60/80% context, the NSF register cache [41], and the two
prefetching strategies.  Reports per-run speedup relative to the banked
core plus the suite means the paper quotes (e.g. mean drops of ~4.4%/7.1%/
10% at 80% context for 4/6/8 threads).

The driver builds the complete config list up front and maps it through
:func:`~repro.experiments.common.run_many`, so the whole figure fans out
over worker processes with ``jobs=N`` (results and row order are identical
to a serial run — this grid is also the reference for the serial-vs-
parallel digest-equality acceptance test).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..system import RunConfig
from .common import SUITE, ExperimentResult, geomean, run_many, scale_to_n

CONTEXTS = (0.8, 0.6, 0.4)
THREADS = (4, 6, 8)


def grid(scale="quick", workloads: Sequence[str] = SUITE,
         threads: Sequence[int] = THREADS, include_nsf: bool = True,
         include_prefetch: bool = True) -> List[RunConfig]:
    """The figure's flat config list, row-major, baseline first per cell."""
    n = scale_to_n(scale)
    configs: List[RunConfig] = []
    for workload in workloads:
        for t in threads:
            base = RunConfig(workload=workload, n_threads=t, n_per_thread=n)
            configs.append(base.with_(core_type="banked"))
            for frac in CONTEXTS:
                configs.append(base.with_(core_type="virec",
                                          context_fraction=frac))
            if include_nsf:
                for frac in (0.8, 0.4):
                    configs.append(base.with_(core_type="nsf",
                                              context_fraction=frac))
            if include_prefetch:
                configs.append(base.with_(core_type="prefetch-full"))
                configs.append(base.with_(core_type="prefetch-exact"))
    return configs


def _column(cfg: RunConfig) -> str:
    """Row column name of one non-baseline config."""
    if cfg.core_type == "virec":
        return f"virec{int(cfg.context_fraction * 100)}"
    if cfg.core_type == "nsf":
        return f"nsf{int(cfg.context_fraction * 100)}"
    return {"prefetch-full": "pf_full", "prefetch-exact": "pf_exact"}[
        cfg.core_type]


def run(scale="quick", workloads: Sequence[str] = SUITE,
        threads: Sequence[int] = THREADS,
        include_nsf: bool = True,
        include_prefetch: bool = True,
        jobs: Optional[int] = None,
        cache: Optional[str] = None) -> ExperimentResult:
    """Reproduce Figure 9 (ViReC vs banked/NSF/prefetch speedups).

    ``cache`` names a run ledger served through
    :class:`~repro.ledger.CachedBackend` — a repeated figure run at the
    same scale replays from the ledger instead of re-simulating.
    """
    configs = grid(scale, workloads, threads, include_nsf, include_prefetch)
    results = iter(run_many(configs, jobs=jobs, cache=cache))

    rows: List[Dict] = []
    for cfg, result in zip(configs, results):
        if cfg.core_type == "banked":
            rows.append({"workload": cfg.workload, "threads": cfg.n_threads,
                         "banked_cycles": result.cycles})
        else:
            rows[-1][_column(cfg)] = rows[-1]["banked_cycles"] / result.cycles

    # suite means per thread count (the numbers quoted in Section 6.1)
    summary = []
    for t in threads:
        sub = [r for r in rows if r["threads"] == t]
        entry = {"workload": "GEOMEAN", "threads": t, "banked_cycles": 0}
        for key in sub[0]:
            if key in ("workload", "threads", "banked_cycles"):
                continue
            entry[key] = geomean([r[key] for r in sub])
        summary.append(entry)
    rows.extend(summary)

    return ExperimentResult(
        experiment="fig09",
        title="speedup vs banked (>1 = faster than banked)",
        rows=rows,
        notes="virecNN = ViReC storing NN% of active contexts; "
              "nsfNN = NSF [41] baseline; pf_* = double-buffer RF prefetching")
