"""Figure 9: performance of ViReC vs banked, NSF, and RF prefetching.

For each workload and thread count (4/6/8), runs: the banked baseline,
ViReC at 40/60/80% context, the NSF register cache [41], and the two
prefetching strategies.  Reports per-run speedup relative to the banked
core plus the suite means the paper quotes (e.g. mean drops of ~4.4%/7.1%/
10% at 80% context for 4/6/8 threads).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..system import RunConfig, run_config
from .common import SUITE, ExperimentResult, geomean, scale_to_n

CONTEXTS = (0.8, 0.6, 0.4)
THREADS = (4, 6, 8)


def run(scale="quick", workloads: Sequence[str] = SUITE,
        threads: Sequence[int] = THREADS,
        include_nsf: bool = True,
        include_prefetch: bool = True) -> ExperimentResult:
    """Reproduce Figure 9 (ViReC vs banked/NSF/prefetch speedups)."""
    n = scale_to_n(scale)
    rows: List[Dict] = []
    for workload in workloads:
        for t in threads:
            base = RunConfig(workload=workload, n_threads=t, n_per_thread=n)
            banked = run_config(base.with_(core_type="banked"))
            row = {"workload": workload, "threads": t,
                   "banked_cycles": banked.cycles}
            for frac in CONTEXTS:
                r = run_config(base.with_(core_type="virec",
                                          context_fraction=frac))
                row[f"virec{int(frac * 100)}"] = banked.cycles / r.cycles
            if include_nsf:
                for frac in (0.8, 0.4):
                    r = run_config(base.with_(core_type="nsf",
                                              context_fraction=frac))
                    row[f"nsf{int(frac * 100)}"] = banked.cycles / r.cycles
            if include_prefetch:
                r = run_config(base.with_(core_type="prefetch-full"))
                row["pf_full"] = banked.cycles / r.cycles
                r = run_config(base.with_(core_type="prefetch-exact"))
                row["pf_exact"] = banked.cycles / r.cycles
            rows.append(row)

    # suite means per thread count (the numbers quoted in Section 6.1)
    summary = []
    for t in threads:
        sub = [r for r in rows if r["threads"] == t]
        entry = {"workload": "GEOMEAN", "threads": t, "banked_cycles": 0}
        for key in sub[0]:
            if key in ("workload", "threads", "banked_cycles"):
                continue
            entry[key] = geomean([r[key] for r in sub])
        summary.append(entry)
    rows.extend(summary)

    return ExperimentResult(
        experiment="fig09",
        title="speedup vs banked (>1 = faster than banked)",
        rows=rows,
        notes="virecNN = ViReC storing NN% of active contexts; "
              "nsfNN = NSF [41] baseline; pf_* = double-buffer RF prefetching")
