"""Figure 12: register-cache replacement policy hit rates.

Runs every workload on a single 8-thread ViReC processor at 80% and 40%
context with each policy: PLRU (prior work), LRU (perfect recency),
MRT-PLRU, MRT-LRU (perfect), LRC, and the compiler-assisted extensions
``dead-first`` (static dead-on-commit hints steer eviction) and
``dead-elide`` (additionally skips the writeback of dead victims).
Reports per-workload hit rates plus the suite means the paper quotes
(LRC ~93.9%/82.9% at 80%/40%; LRC beats PLRU by ~21%/7% speedup).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..system import RunConfig
from .common import SUITE, ExperimentResult, geomean, run_many, scale_to_n

POLICIES = ("plru", "lru", "mrt-plru", "mrt-lru", "lrc", "dead-first",
            "dead-elide")
CONTEXTS = (0.8, 0.4)


def grid(scale="quick", workloads: Sequence[str] = SUITE,
         policies: Sequence[str] = POLICIES,
         n_threads: int = 8) -> List[RunConfig]:
    """The figure's flat config list: workload-major, context, then policy."""
    n = scale_to_n(scale)
    return [RunConfig(workload=workload, core_type="virec",
                      n_threads=n_threads, n_per_thread=n,
                      context_fraction=frac, policy=policy)
            for workload in workloads
            for frac in CONTEXTS
            for policy in policies]


def run(scale="quick", workloads: Sequence[str] = SUITE,
        policies: Sequence[str] = POLICIES,
        n_threads: int = 8, jobs: Optional[int] = None,
        cache: Optional[str] = None) -> ExperimentResult:
    """Reproduce Figure 12 (replacement-policy hit rates/speedups).

    The whole policy grid goes through
    :func:`~repro.experiments.common.run_many`, so ``jobs=N`` fans it out
    over worker processes and ``cache`` replays already-recorded digests
    from a run ledger (the warm-cache acceptance path) — rows are
    identical either way.
    """
    configs = grid(scale, workloads, policies, n_threads)
    results = iter(run_many(configs, jobs=jobs, cache=cache))

    rows: List[Dict] = []
    for workload in workloads:
        for frac in CONTEXTS:
            row = {"workload": workload, "context_%": int(frac * 100)}
            cycles = {}
            for policy in policies:
                r = next(results)
                row[f"hit_{policy}"] = r.rf_hit_rate
                cycles[policy] = r.cycles
            if "plru" in cycles and "lrc" in cycles:
                row["lrc_speedup_vs_plru"] = cycles["plru"] / cycles["lrc"]
            if "mrt-plru" in cycles and "lrc" in cycles:
                row["lrc_speedup_vs_mrtplru"] = cycles["mrt-plru"] / cycles["lrc"]
            rows.append(row)

    for frac in CONTEXTS:
        sub = [r for r in rows if r["context_%"] == int(frac * 100)]
        mean = {"workload": "MEAN", "context_%": int(frac * 100)}
        for key in sub[0]:
            if key in ("workload", "context_%"):
                continue
            vals = [r[key] for r in sub if r.get(key) is not None]
            mean[key] = (geomean(vals) if "speedup" in key
                         else sum(vals) / len(vals))
        rows.append(mean)

    return ExperimentResult(
        experiment="fig12", title="replacement policy hit rate / speedup",
        rows=rows,
        notes="hit_X = register-file hit rate under policy X; paper means: "
              "LRC 93.9%/82.9% at 80/40% context, +20.7%/+7.1% vs PLRU")
