"""Figure 11: performance scaling with increased system load.

Instantiates 1/2/4/8 near-memory processors sharing the crossbar and DRAM,
each running gather with a sweep of thread counts.  As system activity
raises the observed memory latency, more threads are needed to hide it, so
the *best* thread count grows with the number of active processors — the
thread-scalability argument ViReC enables (a statically banked core is
capped at its banks).

Reproduction note (see EXPERIMENTS.md): the paper's crossover is 8 -> 10
threads; in our scaled-down memory system the same crossover appears at
lower absolute counts (4 -> 6), and at the highest load our DRAM model
saturates on bandwidth, where additional threads stop paying — a regime the
paper's configuration does not enter.
"""

from __future__ import annotations

from typing import Sequence

from ..system import RunConfig, run_config
from .common import ExperimentResult, scale_to_n


def run(scale="quick", workload: str = "gather",
        core_counts: Sequence[int] = (1, 2, 4, 8),
        thread_counts: Sequence[int] = (2, 4, 6, 8, 10)) -> ExperimentResult:
    """Reproduce Figure 11 (system-load scaling, best thread count)."""
    n = scale_to_n(scale)
    total_per_core = n * max(thread_counts)
    rows = []
    best_rows = []
    for cores in core_counts:
        best = None
        for threads in thread_counts:
            cfg = RunConfig(workload=workload, core_type="virec",
                            n_threads=threads, n_cores=cores,
                            n_per_thread=total_per_core // threads,
                            context_fraction=0.8)
            r = run_config(cfg)
            dram = r.stats.child("mem").child("dram")
            reqs = dram["reads"] + dram["writes"]
            busy = dram["busy_cycles"]
            row = {
                "cores": cores, "threads": threads, "cycles": r.cycles,
                "throughput": 1e6 * cores * total_per_core / r.cycles,
                "observed_latency": busy / reqs if reqs else 0.0,
            }
            rows.append(row)
            if best is None or row["cycles"] < best["cycles"]:
                best = row
        best_rows.append({"cores": cores, "threads": f"best={best['threads']}",
                          "cycles": best["cycles"],
                          "throughput": best["throughput"],
                          "observed_latency": best["observed_latency"]})
    rows.extend(best_rows)
    return ExperimentResult(
        experiment="fig11",
        title=f"system-load scaling ({workload}, ViReC 80% context)",
        rows=rows,
        notes="same per-core total work at every point; throughput = "
              "elements/Mcycle across the node; the best thread count per "
              "core count grows with observed latency until DRAM bandwidth "
              "saturates")
