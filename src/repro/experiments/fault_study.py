"""Fault study: protection-scheme overhead and escape rates under injection.

Sweeps soft-error rate x protection scheme x (core type, context fraction)
on the gather kernel, injecting seeded bit flips into the physical RF, the
tag store, and the reserved backing region (see :mod:`repro.faults`).  The
study quantifies the resilience trade-off the architecture makes: ViReC's
context state spans three structures (RF cache, tag store, and dcache-held
backing region), so at a matched per-site rate its escape surface exceeds a
banked design's, whose architectural state lives only in its (smaller, but
fully-populated) register banks.

Per cell the driver reports mean cycle overhead over the fault-free
baseline (ECC correction and refill recovery both cost cycles) and the
fraction of seeds whose run aborted on an escape — a parity-detected flip
that cannot be repaired, or (scheme ``none``) silent corruption caught by
the workload's functional check.

Every individual simulation is error-isolated: an escaping run is counted,
not fatal, using the same :class:`~repro.errors.SimulationError` taxonomy
as the resilient sweep runner.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import SimulationError
from ..system import RunConfig, run_config
from .common import ExperimentResult, scale_to_n

#: per-site per-cycle flip probabilities (0 = injection disabled entirely)
RATES = (0.0, 3e-5, 1e-4, 3e-4)
SCHEMES = ("parity", "ecc", "refill")
#: (core_type, context_fraction) cells; banked ignores context fraction
CELLS = (("virec", 0.4), ("virec", 0.8), ("banked", None))
SEEDS_PER_CELL = 3


def _fault_counter(result, name: str) -> float:
    """Sum a fault counter over all cores of one run."""
    return sum(v for k, v in result.stats.flat()
               if k.endswith(f"faults.{name}"))


def _base_config(core_type: str, context_fraction: Optional[float],
                 n: int, seed: int) -> RunConfig:
    kwargs: Dict = dict(workload="gather", core_type=core_type,
                        n_threads=6, n_per_thread=n, seed=seed)
    if context_fraction is not None:
        kwargs["context_fraction"] = context_fraction
    return RunConfig(**kwargs)


def run(scale="quick", sanitize: bool = False) -> ExperimentResult:
    """Fault-rate x scheme sweep; returns one row per (cell, scheme, rate).

    With ``sanitize=True`` every injected run also carries the VSan
    shadow-state sanitizer (per-commit granularity), so a protection
    scheme that claims recovery is cross-checked architecturally: a
    "corrected" value that is not bit-identical to the golden model
    raises :class:`~repro.errors.SanitizerViolation` and counts as an
    escape.  See ``docs/correctness.md``.
    """
    n = scale_to_n(scale)
    rows = []
    for core_type, cf in CELLS:
        # fault-free baseline per seed: the denominator for overhead, and
        # the reference a rate-0 run must reproduce bit-identically
        clean = {}
        for k in range(SEEDS_PER_CELL):
            seed = 7 + 101 * k
            clean[seed] = run_config(_base_config(core_type, cf, n, seed))
        for scheme in SCHEMES:
            for rate in RATES:
                completed, escapes = [], 0
                injected = detected = corrected = recovery = 0.0
                for seed in clean:
                    cfg = _base_config(core_type, cf, n, seed).with_(
                        faults={"rf_rate": rate, "tag_rate": rate,
                                "backing_rate": rate, "scheme": scheme,
                                "seed": seed},
                        sanitize=({"granularity": "commit"} if sanitize
                                  else None))
                    try:
                        r = run_config(cfg)
                    except SimulationError:
                        escapes += 1
                        continue
                    completed.append(r.cycles / clean[seed].cycles - 1.0)
                    injected += _fault_counter(r, "faults_injected")
                    detected += _fault_counter(r, "faults_detected")
                    corrected += _fault_counter(r, "faults_corrected")
                    recovery += _fault_counter(r, "recovery_cycles")
                n_done = len(completed) or 1
                rows.append({
                    "core": core_type,
                    "context": cf if cf is not None else "-",
                    "scheme": scheme,
                    "rate": f"{rate:g}",   # %g: 3e-05 survives the table fmt
                    "runs": SEEDS_PER_CELL,
                    "escapes": escapes,
                    "escape_rate": escapes / SEEDS_PER_CELL,
                    "overhead": sum(completed) / n_done,
                    "injected": injected / n_done,
                    "detected": detected / n_done,
                    "corrected": corrected / n_done,
                    "recovery_cyc": recovery / n_done,
                })
    return ExperimentResult(
        experiment="fault_study",
        title="protection scheme overhead and escape rate vs fault rate",
        rows=rows,
        notes=("overhead = mean cycles vs fault-free baseline (completed "
               "runs); escape_rate = fraction of seeds aborting on an "
               "unrecoverable fault"))
