"""Figure 2: register utilization of memory-intensive workloads.

For every kernel in the suite, reports the fraction of the architectural
register context touched at all and the fraction touched inside the
innermost loops (where these workloads spend most of their runtime).  The
paper's observation: many kernels use less than 30% of their context in the
innermost loop.
"""

from __future__ import annotations

from .. import workloads as wl
from ..compiler import utilization
from ..isa.registers import NUM_ARCH_REGS
from .common import ExperimentResult


def run(scale="quick") -> ExperimentResult:
    """Reproduce Figure 2 (register utilization); scale is unused."""
    rows = []
    for spec in wl.all_workloads():
        inst = spec.build(n_threads=2, n_per_thread=8)
        rep = utilization(inst.program, spec.name, total_context=NUM_ARCH_REGS)
        rows.append({
            "workload": spec.name,
            "suite": spec.suite,
            "used_regs": rep.used,
            "inner_regs": rep.inner,
            "inner_context_%": 100.0 * rep.inner_fraction,
            "inner_of_used_%": 100.0 * rep.inner_of_used,
        })
    below_30 = sum(1 for r in rows if r["inner_context_%"] < 30.0)
    return ExperimentResult(
        experiment="fig02", title="register utilization (inner loop vs context)",
        rows=rows,
        notes=f"{below_30}/{len(rows)} workloads use <30% of the 64-register "
              f"context in their innermost loop (paper: 'many ... less than 30%')")
