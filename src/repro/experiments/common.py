"""Shared infrastructure for the per-figure experiment drivers.

Each ``figNN`` module exposes ``run(scale=...) -> ExperimentResult`` where
``scale`` trades simulated work for runtime ("tiny" for unit tests, "quick"
for the default benchmark run, "full" for the most faithful sweep).  The
result carries printable rows matching the series the paper's figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import math

SCALES = {
    # elements per thread for performance experiments
    "tiny": 12,
    "quick": 48,
    "full": 160,
}

#: the workload set used for suite-wide averages (Figures 9, 12, 13)
SUITE = ("gather", "scatter", "stride", "meabo", "pointer_chase",
         "reduction", "vecadd", "triad", "spmv", "histogram")

#: SUITE plus the extra kernels implemented beyond the paper's core set
EXTENDED_SUITE = SUITE + ("gather_scatter", "bfs_step", "stencil",
                          "hash_probe", "transpose")


def scale_to_n(scale) -> int:
    """Resolve a scale name (or explicit int) to elements-per-thread."""
    if isinstance(scale, int):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; use {sorted(SCALES)} or an int")


@dataclass
class ExperimentResult:
    """Rows + formatting for one figure/table reproduction."""

    experiment: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def format(self) -> str:
        cols = self.columns()
        if not cols:
            return f"== {self.experiment}: {self.title} ==\n(no rows)"
        widths = {c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in self.rows))
                  for c in cols}
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in cols))
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(c, "")).ljust(widths[c])
                                   for c in cols))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def print(self) -> None:
        print(self.format())

    def series(self, key: str) -> List:
        return [row[key] for row in self.rows if key in row]


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries (0.0 if none)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def run_many(configs: Sequence, check: bool = True, jobs: int = None,
             backend=None, cache: str = None, ledger: str = None) -> List:
    """Run a batch of RunConfigs through the execution backend.

    The figure drivers build their whole config list up front and map it
    through this helper, so ``jobs=N`` (or the ``REPRO_JOBS`` environment
    variable) fans a figure's runs over worker processes with results in
    config order — identical to a serial run (see :mod:`repro.exec`).
    Fail-fast: any simulation error raises, as the drivers expect.

    ``cache`` names a run-ledger file served through a
    :class:`~repro.ledger.CachedBackend`: digests already recorded are
    returned byte-identically without re-simulating, and fresh results
    warm the ledger.  ``ledger`` records results without serving hits.
    """
    from ..system.simulator import sweep
    cached = None
    if cache is not None:
        from ..exec import resolve_backend
        from ..ledger import CachedBackend
        cached = CachedBackend(cache, inner=resolve_backend(jobs, backend))
        backend, jobs = cached, None
    try:
        return sweep(list(configs), check=check, on_error="raise",
                     jobs=jobs, backend=backend, ledger=ledger)
    finally:
        if cached is not None:
            cached.close()
