"""Register-cache provisioning study (synthetic-workload extension).

The paper's evaluation normalizes ViReC capacity as a *percentage of the
active context* (40-100%).  Using the synthetic kernel generator this
study asks whether that normalization is the right one: sweeping the
per-thread register working set (4-14 registers) and the provisioned
fraction independently, the hit rate should collapse onto the fraction
axis — i.e. a 60%-provisioned cache behaves the same whether contexts are
small or large.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..system import RunConfig, run_config
from .common import ExperimentResult, scale_to_n

WORKING_SETS = (4, 8, 12)
FRACTIONS = (0.4, 0.6, 0.8, 1.0)


def run(scale="quick", working_sets: Sequence[int] = WORKING_SETS,
        fractions: Sequence[float] = FRACTIONS,
        n_threads: int = 8) -> ExperimentResult:
    """Sweep working-set size x provisioned fraction; report RF hit rates."""
    n = scale_to_n(scale)
    rows: List[Dict] = []
    for ws in working_sets:
        row: Dict = {"working_set": ws}
        for frac in fractions:
            cfg = RunConfig(workload="synthetic", core_type="virec",
                            n_threads=n_threads, n_per_thread=n,
                            context_fraction=frac,
                            workload_kwargs={"working_set": ws,
                                             "alu_per_load": 2})
            r = run_config(cfg)
            row[f"hit@{int(frac * 100)}%"] = r.rf_hit_rate
            row[f"ipc@{int(frac * 100)}%"] = r.ipc
        rows.append(row)

    # collapse check: spread of hit rates across working sets per fraction
    spread_row: Dict = {"working_set": "SPREAD"}
    for frac in fractions:
        key = f"hit@{int(frac * 100)}%"
        vals = [r[key] for r in rows]
        spread_row[key] = max(vals) - min(vals)
    rows.append(spread_row)

    return ExperimentResult(
        experiment="sizing",
        title="register-cache provisioning: hit rate vs context fraction",
        rows=rows,
        notes="SPREAD = max-min hit rate across working-set sizes at equal "
              "provisioned fraction; small spreads validate the paper's "
              "percent-of-context normalization")
