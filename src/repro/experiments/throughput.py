"""Steady-state task throughput (extension of the Section 2/6 scalability
argument).

A deep batch of offloaded tasks drains through a single processor at
varying hardware thread counts.  The banked design stops at its 8 banks and
must two-level schedule (rotate tasks through banks); ViReC simply raises
the hardware thread count with the same register file.  Steady-state
throughput removes the cold-start/tail effects of the fixed-work sweeps.
"""

from __future__ import annotations

from typing import Sequence

from ..system.taskpool import run_taskpool
from .common import ExperimentResult, scale_to_n


def run(scale="quick", workload: str = "gather",
        hw_thread_counts: Sequence[int] = (2, 4, 6, 8, 10),
        tasks_factor: int = 3) -> ExperimentResult:
    """Run the steady-state task-throughput sweep."""
    n = scale_to_n(scale)
    rows = []
    for core_type in ("banked", "virec"):
        for hw in hw_thread_counts:
            if core_type == "banked" and hw > 8:
                continue  # hard cap: 8 banks (Table 1)
            n_tasks = max(hw_thread_counts) * tasks_factor
            stats, inst = run_taskpool(
                workload=workload, core_type=core_type, hw_threads=hw,
                n_tasks=n_tasks, n_per_task=n)
            cycles = int(stats["cycles"])
            rows.append({
                "core": core_type, "hw_threads": hw, "tasks": n_tasks,
                "cycles": cycles,
                "tasks_per_Mcycle": 1e6 * n_tasks / cycles,
                "redispatches": int(stats["tasks_redispatched"]),
            })
    return ExperimentResult(
        experiment="throughput",
        title=f"steady-state task throughput ({workload})",
        rows=rows,
        notes="same task batch at every point; banked rows stop at 8 "
              "hardware threads (bank cap), ViReC continues")
