"""Metrics campaign description (safe to embed in a RunConfig).

Mirrors the telemetry subsystem's opt-in discipline:
``RunConfig(metrics=...)`` takes a :class:`MetricsConfig` (or a dict of its
fields, or ``True`` for the defaults); with the field left ``None`` nothing
is wired — the engine runs its compiled uninstrumented fast path and runs
are bit-identical to a build without this package.  Every instrument here
is purely observational: it counts committed work but never alters a cycle
timestamp, and metric values live outside reproducibility digests (the
``metrics=None`` form is also *excluded* from config digests, so pre-PR
manifest digests and checkpoint-journal keys remain valid).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class MetricsConfig:
    """What the per-run metrics registry records."""

    #: per-commit counters: committed instructions by core (and the
    #: inter-commit gap histogram when ``commit_gaps``)
    commits: bool = True
    #: also label commit counters by instruction kind (load/store/branch/
    #: alu) — slightly more per-commit work, much richer mix breakdowns
    by_kind: bool = False
    #: histogram of commit-to-commit cycle gaps per core (pipeline
    #: smoothness; long tails are stall clusters)
    commit_gaps: bool = True
    #: run-end summary gauges/counters folded from the simulated state:
    #: cycles and instructions per core, VRMU hit/miss totals where a core
    #: has a VRMU
    summary: bool = True

    def __post_init__(self) -> None:
        if self.by_kind and not self.commits:
            raise ValueError("by_kind requires commits")

    @property
    def enabled(self) -> bool:
        """True when any recorder would actually be wired."""
        return bool(self.commits or self.summary)

    @classmethod
    def from_spec(cls, spec) -> "MetricsConfig":
        """Build from a MetricsConfig, a dict of its fields, True, or None."""
        if spec is None:
            return cls(commits=False, commit_gaps=False, summary=False)
        if spec is True:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            known = {f.name for f in fields(cls)}
            unknown = set(spec) - known
            if unknown:
                raise ValueError(
                    f"unknown metrics field(s) {sorted(unknown)}; "
                    f"choose from {sorted(known)}")
            return cls(**spec)
        raise TypeError(f"metrics spec must be a MetricsConfig, dict, True, "
                        f"or None, not {type(spec).__name__}")

    def with_(self, **kw) -> "MetricsConfig":
        return replace(self, **kw)
