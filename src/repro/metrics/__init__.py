"""Cross-process metrics: typed Counter/Gauge/Histogram with label sets.

``repro.metrics`` is the *fleet* half of the observability stack.  Where
:mod:`repro.telemetry` looks inside one run (event rings, interval
samples, probes), a :class:`MetricsRegistry` aggregates **across** runs and
worker processes with deterministic snapshot/merge semantics — the same
discipline as :meth:`repro.stats.counters.Stats.merge`, but typed, labeled,
and built to cross a process boundary as plain JSON.

Two attachment points:

* **Per-run (engine level).**  ``RunConfig(metrics=...)`` wires a
  :class:`MetricsSession` whose :class:`CoreMetrics` instruments ride the
  core's :class:`~repro.core.instrument.InstrumentBus` ``metrics`` slot —
  strictly opt-in, purely observational, dispatched after telemetry and
  before the sanitizer.  With ``metrics=None`` (the default) the engine
  keeps its compiled uninstrumented fast path and manifest digests are
  byte-identical to a build without this package.

* **Per-sweep (fleet level).**  ``run_grid(..., metrics=registry)``
  accumulates sweep counters (rows by status, per-stage wall-clock) and
  merges every worker-shipped per-run snapshot into one registry; the CLI
  writes it as ``metrics.json`` inside a sweep directory for
  ``repro report``.

Like ``host_profiles``, metric values never enter reproducibility digests.
"""

from __future__ import annotations

import json
from typing import List, Optional

from .config import MetricsConfig
from .registry import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                       MetricsRegistry)

__all__ = ["CoreMetrics", "Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram",
           "MetricsConfig", "MetricsRegistry", "MetricsSession"]

#: commit-gap histogram bounds in cycles: tight at the pipelined end,
#: coarse into stall territory
_GAP_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128, 256, 1024)


class CoreMetrics:
    """The per-core bus instrument: counts committed work.

    Dispatched from the instrumented per-instruction step (bus slot
    ``metrics``), after telemetry and before the sanitizer.  Purely
    observational — it reads the commit timestamp, never adjusts one.
    """

    __slots__ = ("session", "core", "_core_label", "_instructions",
                 "_gaps", "_by_kind", "_last_commit")

    def __init__(self, session: "MetricsSession", core) -> None:
        self.session = session
        self.core = core
        self._core_label = str(core.core_id)
        reg = session.registry
        cfg = session.config
        self._instructions = reg.counter(
            "sim_instructions_committed",
            "instructions committed, by core (and kind with by_kind)")
        self._gaps = (reg.histogram(
            "sim_commit_gap_cycles",
            "cycles between consecutive commits, by core",
            buckets=_GAP_BUCKETS) if cfg.commit_gaps else None)
        self._by_kind = cfg.by_kind
        self._last_commit = 0

    def on_commit(self, thread, d, t_commit: int) -> None:
        """Record one committed instruction (``d`` is its DecodedOp)."""
        if self._by_kind:
            if d.is_load:
                kind = "load"
            elif d.is_store:
                kind = "store"
            elif d.is_branch:
                kind = "branch"
            else:
                kind = "alu"
            self._instructions.inc(core=self._core_label, kind=kind)
        else:
            self._instructions.inc(core=self._core_label)
        if self._gaps is not None:
            gap = t_commit - self._last_commit
            self._last_commit = t_commit
            self._gaps.observe(gap, core=self._core_label)


class MetricsSession:
    """All metric state of one simulation run (owns the registry)."""

    def __init__(self, config: Optional[MetricsConfig] = None) -> None:
        self.config = config or MetricsConfig()
        self.registry = MetricsRegistry()
        self.cores: List[CoreMetrics] = []

    # -- wiring ------------------------------------------------------------
    def attach(self, core) -> Optional[CoreMetrics]:
        """Wire one core's ``metrics`` bus slot to this session."""
        if not self.config.commits:
            self.cores.append(CoreMetrics(self, core))  # for finalize only
            return None
        cm = CoreMetrics(self, core)
        core.metrics = cm  # property: sets the bus slot and recompiles
        self.cores.append(cm)
        return cm

    def finalize(self) -> None:
        """Fold run-end summary gauges from the simulated state."""
        if not self.config.summary:
            return
        reg = self.registry
        cycles = reg.gauge("sim_cycles", "commit-clock cycles, by core")
        vrmu_hits = reg.counter("sim_vrmu_hits", "VRMU register-cache hits")
        vrmu_miss = reg.counter("sim_vrmu_misses",
                                "VRMU register-cache misses")
        for cm in self.cores:
            core = cm.core
            cycles.set(int(core.commit_tail), core=cm._core_label)
            if hasattr(core, "vrmu"):
                vrmu_hits.inc(core.vrmu.stats["hits"], core=cm._core_label)
                vrmu_miss.inc(core.vrmu.stats["misses"], core=cm._core_label)

    # -- artifacts ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic JSON value (ships across process boundaries)."""
        return self.registry.snapshot()

    def render_text(self) -> str:
        return self.registry.render_text()

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.snapshot(), f, indent=1, sort_keys=True)
            f.write("\n")


# -- driver wiring (self-registration into the system plugin registry) ----
from ..system.plugins import SubsystemPlugin, register as _register_plugin


def _plugin_enabled(cfg) -> bool:
    return (cfg.metrics is not None
            and MetricsConfig.from_spec(cfg.metrics).enabled)


def _plugin_wire(cfg, node, instances):
    """Attach a MetricsSession when the config asks for one.

    Strictly opt-in; wired after telemetry (plugin order 25) so the
    dispatch order on the bus matches the registry order.
    """
    if not _plugin_enabled(cfg):
        return None
    session = MetricsSession(MetricsConfig.from_spec(cfg.metrics))
    for core in node.cores:
        session.attach(core)
    return session


PLUGIN = _register_plugin(SubsystemPlugin(
    name="metrics",
    enabled=_plugin_enabled,
    wire=_plugin_wire,
    finalize=lambda session: session.finalize(),
    ooo_error=("metrics are not modelled for the ooo host core "
               "(it does not run on the timeline engine)"),
    order=25,
))
