"""Typed metric families with label sets and deterministic merge.

The fleet-observability counterpart of :class:`repro.stats.counters.Stats`:
where a ``Stats`` tree belongs to *one* simulated component inside one run,
a :class:`MetricsRegistry` aggregates across runs, cores, and worker
processes.  Three metric kinds are supported:

:class:`Counter`
    Monotonically increasing totals (``rows_total``, ``instructions``).
:class:`Gauge`
    Point-in-time values; cross-process merge keeps the configured
    aggregate (``max`` by default, or ``sum``/``last``).
:class:`Histogram`
    Fixed-bound bucket counts plus sum/count, so latency distributions
    merge exactly (bucket-wise addition, same discipline as
    :meth:`Stats.merge`).

Determinism contract: :meth:`MetricsRegistry.snapshot` is a pure JSON
value with sorted keys, label sets are canonicalized (sorted by label
name), and :meth:`MetricsRegistry.merge` is associative and commutative
for counters and histograms — merging N worker snapshots produces the
same registry in any order.  Snapshots therefore ship safely across
process boundaries and diff cleanly run-over-run.  Like the manifest's
``host_profiles``, metric values live *outside* reproducibility digests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: default histogram upper bounds (powers of two, cycles/seconds agnostic)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical (sorted, stringified) form of one label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    """``a="1",b="x"`` — the stable series identifier used in snapshots."""
    return ",".join(f'{k}="{v}"' for k, v in key)


def _parse_labels(text: str) -> LabelKey:
    if not text:
        return ()
    pairs = []
    for part in text.split(","):
        name, _, value = part.partition("=")
        pairs.append((name, value.strip('"')))
    return tuple(pairs)


class Metric:
    """Base of one named metric family (all series share the name/kind)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or any(c in name for c in ' {}",\n'):
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help

    def series(self) -> Dict[str, object]:
        """Snapshot payload: ``{rendered-labels: value}`` (sorted later)."""
        raise NotImplementedError

    def merge_series(self, series: Dict[str, object]) -> None:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing total, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def series(self) -> Dict[str, object]:
        return {_render_labels(k): v for k, v in self._values.items()}

    def merge_series(self, series: Dict[str, object]) -> None:
        for text, value in series.items():
            key = _parse_labels(text)
            self._values[key] = self._values.get(key, 0.0) + float(value)


class Gauge(Metric):
    """Point-in-time value; ``agg`` picks the cross-snapshot merge rule.

    ``max`` (the default) is deterministic regardless of merge order and is
    the right call for peaks (occupancy, queue depth); ``sum`` suits
    partitionable quantities; ``last`` keeps whatever merged most recently
    (order-dependent — only for single-writer gauges).
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", agg: str = "max") -> None:
        super().__init__(name, help)
        if agg not in ("max", "sum", "last"):
            raise ValueError(f"unknown gauge agg {agg!r}")
        self.agg = agg
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels) -> Optional[float]:
        return self._values.get(_label_key(labels))

    def series(self) -> Dict[str, object]:
        return {_render_labels(k): v for k, v in self._values.items()}

    def merge_series(self, series: Dict[str, object]) -> None:
        for text, value in series.items():
            key = _parse_labels(text)
            value = float(value)
            if key not in self._values or self.agg == "last":
                self._values[key] = value
            elif self.agg == "max":
                if value > self._values[key]:
                    self._values[key] = value
            else:  # sum
                self._values[key] += value


class Histogram(Metric):
    """Fixed-bound bucket counts; merges bucket-wise across processes."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        #: per label set: (per-bucket counts incl. +Inf overflow, sum, n)
        self._series: Dict[LabelKey, List] = {}

    def _slot(self, labels: Dict[str, object]) -> List:
        key = _label_key(labels)
        if key not in self._series:
            self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
        return self._series[key]

    def observe(self, value: float, **labels) -> None:
        slot = self._slot(labels)
        counts, _, _ = slot
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        slot[1] += float(value)
        slot[2] += 1

    def count(self, **labels) -> int:
        key = _label_key(labels)
        return self._series[key][2] if key in self._series else 0

    def mean(self, **labels) -> Optional[float]:
        key = _label_key(labels)
        if key not in self._series or not self._series[key][2]:
            return None
        return self._series[key][1] / self._series[key][2]

    def series(self) -> Dict[str, object]:
        return {_render_labels(k): {"counts": list(counts), "sum": total,
                                    "count": n}
                for k, (counts, total, n) in self._series.items()}

    def merge_series(self, series: Dict[str, object]) -> None:
        for text, payload in series.items():
            key = _parse_labels(text)
            counts = payload["counts"]
            if len(counts) != len(self.buckets) + 1:
                raise ValueError(
                    f"histogram {self.name!r}: snapshot has "
                    f"{len(counts)} buckets, registry has "
                    f"{len(self.buckets) + 1}")
            if key not in self._series:
                self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
            slot = self._series[key]
            for i, c in enumerate(counts):
                slot[0][i] += int(c)
            slot[1] += float(payload["sum"])
            slot[2] += int(payload["count"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metric families with snapshot/merge."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- family constructors (idempotent by name) --------------------------
    def _family(self, cls, name: str, help: str, **kw) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(f"metric {name!r} already registered as "
                                 f"{existing.kind}")
            return existing
        metric = cls(name, help, **kw)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "", agg: str = "max") -> Gauge:
        g = self._family(Gauge, name, help, agg=agg)
        if g.agg != agg:
            raise ValueError(f"gauge {name!r} already registered with "
                             f"agg={g.agg!r}")
        return g

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._family(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshot / merge ---------------------------------------------------
    def snapshot(self) -> Dict:
        """The whole registry as a deterministic JSON value.

        Stable across processes and interpreter runs given the same
        recorded values: metric names and label sets are sorted, floats
        are emitted as-is (the recorder controls rounding).
        """
        out: Dict = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            entry: Dict = {"kind": m.kind, "help": m.help,
                           "series": dict(sorted(m.series().items()))}
            if isinstance(m, Histogram):
                entry["buckets"] = list(m.buckets)
            if isinstance(m, Gauge):
                entry["agg"] = m.agg
            out[name] = entry
        return {"metrics": out}

    def merge(self, other) -> "MetricsRegistry":
        """Fold another registry or a :meth:`snapshot` value into this one.

        Families absent here are created from the snapshot's declared kind;
        families present in both must agree on kind (and bucket count for
        histograms).  Counter/histogram series add; gauges combine by their
        declared ``agg``.  Returns ``self`` for chaining.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        if not snap:
            return self
        for name, entry in snap.get("metrics", {}).items():
            kind = entry.get("kind", "counter")
            if kind not in _KINDS:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            metric = self._metrics.get(name)
            if metric is None:
                if kind == "histogram":
                    metric = self.histogram(name, entry.get("help", ""),
                                            entry.get("buckets",
                                                      DEFAULT_BUCKETS))
                elif kind == "gauge":
                    metric = self.gauge(name, entry.get("help", ""),
                                        entry.get("agg", "max"))
                else:
                    metric = self.counter(name, entry.get("help", ""))
            elif metric.kind != kind:
                raise ValueError(f"metric {name!r}: cannot merge {kind} "
                                 f"snapshot into {metric.kind}")
            metric.merge_series(entry.get("series", {}))
        return self

    @classmethod
    def from_snapshot(cls, snap: Dict) -> "MetricsRegistry":
        return cls().merge(snap)

    # -- human-readable exposition -----------------------------------------
    def render_text(self) -> str:
        """Prometheus-flavoured text exposition (for terminals and logs)."""
        lines: List[str] = []
        snap = self.snapshot()["metrics"]
        for name, entry in snap.items():
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['kind']}")
            for labels, value in entry["series"].items():
                tag = f"{{{labels}}}" if labels else ""
                if entry["kind"] == "histogram":
                    lines.append(f"{name}_count{tag} {value['count']}")
                    lines.append(f"{name}_sum{tag} {value['sum']:g}")
                else:
                    lines.append(f"{name}{tag} {value:g}")
        return "\n".join(lines)
