"""Hierarchical statistics counters used across the simulator.

Every architectural component owns a :class:`Stats` namespace. Counters are
created on first use, so components can record events without pre-declaring
them.  Scalar counters, ratios, and simple histograms are supported; the whole
tree can be flattened into a ``dict`` for reporting from experiment drivers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Stats:
    """A named bag of counters, optionally containing child namespaces.

    >>> s = Stats("core0")
    >>> s.inc("instructions", 5)
    >>> s["instructions"]
    5
    >>> s.child("dcache").inc("misses")
    >>> dict(s.flat())["core0.dcache.misses"]
    1
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)
        self._children: Dict[str, "Stats"] = {}

    # -- counters ---------------------------------------------------------
    def inc(self, key: str, amount: float = 1) -> None:
        """Increment counter ``key`` by ``amount`` (creating it at 0)."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Set counter ``key`` to an absolute value."""
        self._counters[key] = value

    def max(self, key: str, value: float) -> None:
        """Record the running maximum of ``key``."""
        if value > self._counters.get(key, float("-inf")):
            self._counters[key] = value

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def ratio(self, num: str, den: str) -> float:
        """Return counter ``num`` / counter ``den`` (0 if denominator is 0)."""
        d = self._counters.get(den, 0.0)
        return self._counters.get(num, 0.0) / d if d else 0.0

    # -- hierarchy --------------------------------------------------------
    def child(self, name: str) -> "Stats":
        """Return (creating if needed) the child namespace ``name``."""
        if name not in self._children:
            self._children[name] = Stats(name)
        return self._children[name]

    def children(self) -> Dict[str, "Stats"]:
        return dict(self._children)

    def flat(self, prefix: str | None = None) -> Iterator[Tuple[str, float]]:
        """Yield ``(dotted.path, value)`` for every counter in the tree."""
        base = self.name if prefix is None else prefix
        for key, value in sorted(self._counters.items()):
            yield (f"{base}.{key}" if base else key, value)
        for child in self._children.values():
            yield from child.flat(f"{base}.{child.name}" if base else child.name)

    def as_dict(self) -> Dict[str, float]:
        """Flatten the entire tree into a plain dictionary."""
        return dict(self.flat())

    def merge(self, other: "Stats") -> "Stats":
        """Add every counter of ``other``'s tree into this one (recursively).

        Children are matched by name; missing namespaces are created.  Lets
        aggregation sites (multi-core sweeps, the interval sampler) combine
        per-core trees structurally instead of hand-flattening dicts.
        Returns ``self`` for chaining.
        """
        for key, value in other._counters.items():
            self._counters[key] += value
        for name, child in other._children.items():
            self.child(name).merge(child)
        return self

    def snapshot(self) -> Dict[str, float]:
        """Flat copy of every counter (dotted keys, rooted at this node).

        Keys are relative to this namespace (the node's own name is not
        prefixed), so snapshots taken from the same node are comparable
        regardless of where the node sits in a larger tree.
        """
        return dict(self.flat(prefix=""))

    def delta(self, since: Dict[str, float]) -> Dict[str, float]:
        """Difference of the current counters against a prior snapshot.

        Counters created after the snapshot delta against zero; counters
        untouched since the snapshot report 0.0 (they are retained so
        interval series keep a stable column set).
        """
        now = self.snapshot()
        keys = set(now) | set(since)
        return {k: now.get(k, 0.0) - since.get(k, 0.0) for k in keys}

    def reset(self) -> None:
        """Zero every counter in this namespace and all children."""
        self._counters.clear()
        for child in self._children.values():
            child.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stats({self.name!r}, {dict(self._counters)!r}, children={list(self._children)})"
