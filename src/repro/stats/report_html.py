"""Regression-aware HTML reports from sweep directories.

``repro report <dir>`` folds a sweep's artifacts — ``manifest.json``
(configs, deterministic result summaries, host profiles),
``metrics.json`` (the fleet :class:`~repro.metrics.MetricsRegistry`
snapshot), and ``sweep_events.jsonl`` — into one **self-contained** HTML
file: inline CSS, inline SVG sparklines, no external assets, so the file
can be archived as a CI artifact and opened anywhere.

Sections rendered (each skipped gracefully when its artifact is absent):

* sweep summary (rows ok/failed/resumed, rate, wall-clock);
* per-row IPC / cycles / RF-hit-rate tables with sparkline history
  across the grid;
* per-stage host wall-clock breakdown (from the fleet
  ``sweep_stage_seconds`` counter);
* VRMU hit-rate / cycle tables per core (from the per-run metrics
  snapshots merged into the fleet registry);
* cycle attribution (from a ``profile.json`` snapshot written by
  ``repro profile --json`` into the sweep directory): a per-cause
  stacked bar plus the hottest per-PC rows;
* severity-gated deltas against a ``BENCH_simspeed.json`` baseline.

The delta table doubles as a **CI perf gate**: ``repro report --check``
exits non-zero (:data:`EXIT_REGRESSION`) when any tracked metric
regresses beyond the threshold, so a pipeline step fails exactly when
simulator throughput does.  Wall-clock rates are machine-dependent; the
default threshold is deliberately loose — tighten it only on pinned
hardware.
"""

from __future__ import annotations

import html
import json
import os
from typing import Dict, List, Optional, Sequence

__all__ = ["EXIT_REGRESSION", "build_report", "check_threaded_floors",
           "classify_delta", "load_baseline", "render_html", "svg_sparkline",
           "write_report"]

#: ``repro report --check`` exit code on a gated regression (2 = usage
#: error, 3 = sweep failures, as elsewhere in the CLI)
EXIT_REGRESSION = 4

#: default relative regression threshold for ``--check`` (generous: CI
#: hosts vary; see the module docstring)
DEFAULT_THRESHOLD = 0.5

#: fallback speedup floor for ``threaded_*`` baseline entries that do not
#: record their own ``floor`` (the compiled engine contract: at least this
#: much faster than the interpreted hot path on the same host)
DEFAULT_THREADED_FLOOR = 1.8

SEVERITY_ORDER = ("ok", "warn", "regression")


# -- building blocks ---------------------------------------------------------
def svg_sparkline(values: Sequence[float], width: int = 140,
                  height: int = 28, color: str = "#2a6fb0") -> str:
    """An inline-SVG sparkline of ``values`` (safe on degenerate series).

    Empty series render an empty frame; single-point and constant series
    render a centered flat line (no divide-by-zero on a flat range).
    """
    finite = [float(v) for v in values
              if isinstance(v, (int, float)) and v == v
              and v not in (float("inf"), float("-inf"))]
    pad = 2.0
    if not finite:
        return (f'<svg class="spark" width="{width}" height="{height}" '
                f'viewBox="0 0 {width} {height}"></svg>')
    lo, hi = min(finite), max(finite)
    span = hi - lo
    usable_h = height - 2 * pad
    usable_w = width - 2 * pad

    def y_of(v: float) -> float:
        if span == 0:
            return height / 2.0
        return pad + usable_h * (1.0 - (v - lo) / span)

    if len(finite) == 1:
        xs = [width / 2.0]
    else:
        step = usable_w / (len(finite) - 1)
        xs = [pad + i * step for i in range(len(finite))]
    points = " ".join(f"{x:.1f},{y_of(v):.1f}" for x, v in zip(xs, finite))
    last_x, last_y = xs[-1], y_of(finite[-1])
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{points}"/>'
            f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2" '
            f'fill="{color}"/></svg>')


def classify_delta(current: Optional[float], baseline: Optional[float],
                   threshold: float = DEFAULT_THRESHOLD,
                   higher_is_better: bool = True) -> Dict:
    """One tracked metric's delta, graded ``ok`` / ``warn`` / ``regression``.

    ``warn`` fires at half the regression threshold.  Missing or
    non-positive baselines grade ``ok`` (nothing to compare against).
    """
    entry = {"current": current, "baseline": baseline, "delta": None,
             "severity": "ok"}
    if current is None or baseline is None or baseline <= 0:
        return entry
    delta = (current - baseline) / baseline
    if not higher_is_better:
        delta = -delta
    entry["delta"] = delta
    if delta < -threshold:
        entry["severity"] = "regression"
    elif delta < -threshold / 2:
        entry["severity"] = "warn"
    return entry


def load_baseline(path: str) -> Dict[str, float]:
    """Tracked baseline rates from a ``BENCH_simspeed.json``-style file.

    Accepts the benchmark writer's shape (``{"bench": ..., "results":
    {name: {"instr_per_s": ...}}}``) or a plain ``{name: rate}`` mapping.
    Entries without a numeric rate are skipped.
    """
    with open(path) as f:
        data = json.load(f)
    out: Dict[str, float] = {}
    results = data.get("results", data) if isinstance(data, dict) else {}
    for name, entry in results.items():
        if isinstance(entry, (int, float)):
            out[name] = float(entry)
        elif isinstance(entry, dict):
            rate = entry.get("instr_per_s")
            if isinstance(rate, (int, float)):
                out[name] = float(rate)
    return out


def check_threaded_floors(path: str) -> List[Dict]:
    """Grade every ``threaded_*`` entry of a ``BENCH_simspeed.json``.

    The threaded-code engine bench records, per core type, the compiled
    engine's ``speedup_vs_hotpath`` over the interpreted loop measured
    back-to-back on the same host — a machine-independent ratio, so
    unlike the wall-clock deltas it carries a **hard floor**: each entry's
    own ``floor`` field, or :data:`DEFAULT_THREADED_FLOOR`.  Below the
    floor grades ``regression`` (fails ``repro report --check``), within
    5% above it grades ``warn``.
    """
    with open(path) as f:
        data = json.load(f)
    results = data.get("results", data) if isinstance(data, dict) else {}
    rows: List[Dict] = []
    for name in sorted(results):
        if not name.startswith("threaded_"):
            continue
        entry = results[name]
        if not isinstance(entry, dict):
            continue
        speedup = entry.get("speedup_vs_hotpath")
        if not isinstance(speedup, (int, float)):
            continue
        floor = entry.get("floor", DEFAULT_THREADED_FLOOR)
        severity = ("regression" if speedup < floor
                    else "warn" if speedup < floor * 1.05 else "ok")
        rows.append({"name": name, "speedup": round(float(speedup), 3),
                     "floor": float(floor), "severity": severity})
    return rows


# -- report assembly ---------------------------------------------------------
def _load_json(path: str) -> Optional[Dict]:
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def _metric_series(metrics: Optional[Dict], name: str) -> Dict[str, object]:
    if not metrics:
        return {}
    entry = metrics.get("metrics", {}).get(name)
    return entry.get("series", {}) if entry else {}


def _label_value(series_key: str, label: str) -> Optional[str]:
    """Extract one label's value from a rendered series key."""
    for part in series_key.split(","):
        k, _, v = part.partition("=")
        if k == label:
            return v.strip('"')
    return None


def _row_label(cfg: Dict) -> str:
    bits = [str(cfg.get("workload", "?")), str(cfg.get("core_type", "?")),
            f"t{cfg.get('n_threads', '?')}"]
    cf = cfg.get("context_fraction")
    if cf not in (None, 1.0):
        bits.append(f"cf{cf}")
    seed = cfg.get("seed")
    if seed not in (None, 7):
        bits.append(f"s{seed}")
    return "/".join(bits)


def _history_section(ledger_path: str) -> List[Dict]:
    """Per-digest host-rate trend entries from a run ledger (may be [])."""
    from ..ledger import LedgerReader, history_series

    with LedgerReader(ledger_path) as reader:
        return history_series(reader)


def build_report(sweep_dir: str, baseline: Optional[str] = None,
                 threshold: float = DEFAULT_THRESHOLD,
                 ledger: Optional[str] = None) -> Dict:
    """Everything the HTML needs, as one plain dict (JSON-serializable).

    Pure data assembly — rendering is :func:`render_html` — so tests can
    assert on the gate decision without parsing HTML.  ``ledger`` names a
    run-ledger file feeding the History section (default: auto-detect
    ``ledger.sqlite`` inside the sweep directory, then cwd).
    """
    from ..system.monitor import read_state

    manifest = _load_json(os.path.join(sweep_dir, "manifest.json"))
    metrics = _load_json(os.path.join(sweep_dir, "metrics.json"))
    state = read_state(sweep_dir)

    report: Dict = {
        "sweep_dir": os.path.abspath(sweep_dir),
        "summary": {
            "total": state.total, "ok": state.ok, "failed": state.failed,
            "resumed": state.resumed, "rate": round(state.rate, 3),
            "elapsed_s": round(state.elapsed_s, 3),
            "finished": state.finished,
            "workers": len(state.workers),
        },
        "rows": [], "stages": [], "vrmu": [], "deltas": [],
        "engine_gate": [], "history": [],
        "attribution": None,
        "threshold": threshold,
        "has_regression": False,
    }

    if ledger is None:
        for candidate in (os.path.join(sweep_dir, "ledger.sqlite"),
                          "ledger.sqlite"):
            if os.path.exists(candidate):
                ledger = candidate
                break
    if ledger and os.path.exists(ledger):
        report["ledger_path"] = os.path.abspath(ledger)
        report["history"] = _history_section(ledger)

    profile = _load_json(os.path.join(sweep_dir, "profile.json"))
    if profile:
        causes = profile.get("causes", {})
        total = sum(causes.values())
        order = [c for c in profile.get("taxonomy", sorted(causes))
                 if causes.get(c)]
        order += [c for c in sorted(causes) if causes[c] and c not in order]
        report["attribution"] = {
            "cycles": profile.get("cycles", 0),
            "total": total,
            "causes": [{"cause": c, "cycles": causes[c],
                        "share": (round(causes[c] / total, 4)
                                  if total else None)}
                       for c in order],
            "hotspots": profile.get("hotspots", [])[:10],
        }

    host_rates: Dict[str, List[float]] = {}
    if manifest:
        configs = manifest.get("configs", [])
        summaries = manifest.get("results_summary", [])
        profiles = manifest.get("host_profiles", []) or []
        report["results_digest"] = manifest.get("results_digest", "")
        for i, (cfg, summary) in enumerate(zip(configs, summaries)):
            prof = profiles[i] if i < len(profiles) else None
            row = {"label": _row_label(cfg),
                   "cycles": summary.get("cycles"),
                   "instructions": summary.get("instructions"),
                   "ipc": summary.get("ipc"),
                   "rf_hit_rate": summary.get("rf_hit_rate"),
                   "instr_per_s": (prof or {}).get("instr_per_s"),
                   "total_s": (prof or {}).get("total_s")}
            report["rows"].append(row)
            rate = row["instr_per_s"]
            if rate is not None:
                host_rates.setdefault(str(cfg.get("core_type", "?")),
                                      []).append(float(rate))

    stage_series = _metric_series(metrics, "sweep_stage_seconds")
    total_stage = sum(float(v) for v in stage_series.values()) or None
    for key in sorted(stage_series):
        secs = float(stage_series[key])
        report["stages"].append({
            "stage": _label_value(key, "stage") or key,
            "seconds": round(secs, 4),
            "share": round(secs / total_stage, 4) if total_stage else None})

    hits = _metric_series(metrics, "sim_vrmu_hits")
    misses = _metric_series(metrics, "sim_vrmu_misses")
    cycles = _metric_series(metrics, "sim_cycles")
    for key in sorted(set(hits) | set(misses)):
        core = _label_value(key, "core") or "?"
        h = float(hits.get(key, 0))
        m = float(misses.get(key, 0))
        report["vrmu"].append({
            "core": core, "hits": int(h), "misses": int(m),
            "hit_rate": round(h / (h + m), 4) if h + m else None,
            "cycles": (int(float(cycles[key]))
                       if key in cycles else None)})

    if baseline:
        base_rates = load_baseline(baseline)
        report["baseline_path"] = os.path.abspath(baseline)
        for name in sorted(base_rates):
            if name not in host_rates:
                continue
            current = sum(host_rates[name]) / len(host_rates[name])
            entry = classify_delta(current, base_rates[name],
                                   threshold=threshold)
            entry["name"] = f"{name} instr/s"
            entry["current"] = round(current, 1)
            report["deltas"].append(entry)
        report["engine_gate"] = check_threaded_floors(baseline)
        report["has_regression"] = any(
            d["severity"] == "regression"
            for d in report["deltas"] + report["engine_gate"])
    return report


# -- rendering ---------------------------------------------------------------
_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; color: #1c2733;
       margin: 2em auto; max-width: 62em; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #d5dde5; padding: .25em .6em; text-align: right; }
th { background: #eef2f6; } td.l, th.l { text-align: left; }
.spark { vertical-align: middle; }
.sev-ok { background: #e7f5ec; } .sev-warn { background: #fdf3d7; }
.sev-regression { background: #fbe1e1; font-weight: 600; }
.meta { color: #5a6a7a; font-size: .92em; }
.badge { display: inline-block; padding: .1em .55em; border-radius: .7em;
         font-size: .85em; color: #fff; }
.badge-ok { background: #2e8b57; } .badge-regression { background: #c0392b; }
.stack { display: flex; height: 20px; width: 100%; max-width: 56em;
         border: 1px solid #d5dde5; border-radius: 3px; overflow: hidden; }
.stack span { display: block; height: 100%; }
.swatch { display: inline-block; width: .8em; height: .8em;
          border-radius: 2px; margin-right: .35em; vertical-align: baseline; }
"""

#: stacked-bar palette, cycled per cause (taxonomy display order)
_CAUSE_COLORS = ("#2a6fb0", "#8ab4d8", "#c0392b", "#e67e22", "#8e44ad",
                 "#d4a017", "#2e8b57", "#73c6a2", "#1f8a8a", "#b24d6e",
                 "#7f8c8d", "#bcc6cc")


def _esc(value) -> str:
    return html.escape(str(value))


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "&ndash;"
    if isinstance(value, float):
        return f"{value:,.{digits}g}" if abs(value) >= 1 else f"{value:.{digits}f}"
    return _esc(value)


def render_html(report: Dict) -> str:
    """The report dict as one self-contained HTML page."""
    s = report["summary"]
    badge = ('<span class="badge badge-regression">REGRESSION</span>'
             if report["has_regression"]
             else '<span class="badge badge-ok">OK</span>')
    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro sweep report</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Sweep report {badge}</h1>",
        f"<p class='meta'>{_esc(report['sweep_dir'])}"
        + (f" &middot; digest <code>{_esc(report['results_digest'])}</code>"
           if report.get("results_digest") else "") + "</p>",
        "<h2>Summary</h2>",
        f"<p>{s['ok']} ok / {s['failed']} failed / {s['resumed']} resumed "
        f"of {s['total']} rows &middot; {s['rate']} rows/s &middot; "
        f"{s['elapsed_s']} s elapsed &middot; {s['workers']} worker(s) "
        f"&middot; {'finished' if s['finished'] else 'in progress'}</p>",
    ]

    rows = report["rows"]
    if rows:
        parts.append("<h2>Per-row results</h2>")
        for metric, digits in (("ipc", 4), ("cycles", 6),
                               ("rf_hit_rate", 4), ("instr_per_s", 6)):
            series = [r.get(metric) for r in rows]
            if not any(v is not None for v in series):
                continue
            parts.append(f"<p class='l'><b>{_esc(metric)}</b> across the "
                         f"grid {svg_sparkline([v for v in series if v is not None])}</p>")
        parts.append("<table><tr><th class='l'>config</th><th>cycles</th>"
                     "<th>instr</th><th>ipc</th><th>rf hit</th>"
                     "<th>instr/s (host)</th></tr>")
        for r in rows:
            parts.append(
                f"<tr><td class='l'>{_esc(r['label'])}</td>"
                f"<td>{_fmt(r['cycles'])}</td>"
                f"<td>{_fmt(r['instructions'])}</td>"
                f"<td>{_fmt(r['ipc'])}</td>"
                f"<td>{_fmt(r['rf_hit_rate'])}</td>"
                f"<td>{_fmt(r['instr_per_s'], 6)}</td></tr>")
        parts.append("</table>")

    if report["stages"]:
        parts.append("<h2>Host wall-clock by stage</h2>"
                     "<table><tr><th class='l'>stage</th><th>seconds</th>"
                     "<th>share</th></tr>")
        for st in report["stages"]:
            share = (f"{st['share'] * 100:.1f}%"
                     if st["share"] is not None else "&ndash;")
            parts.append(f"<tr><td class='l'>{_esc(st['stage'])}</td>"
                         f"<td>{_fmt(st['seconds'])}</td>"
                         f"<td>{share}</td></tr>")
        parts.append("</table>")

    if report["vrmu"]:
        parts.append("<h2>VRMU register cache (fleet totals)</h2>"
                     "<table><tr><th class='l'>core</th><th>hits</th>"
                     "<th>misses</th><th>hit rate</th><th>cycles</th></tr>")
        for v in report["vrmu"]:
            parts.append(f"<tr><td class='l'>{_esc(v['core'])}</td>"
                         f"<td>{_fmt(v['hits'])}</td>"
                         f"<td>{_fmt(v['misses'])}</td>"
                         f"<td>{_fmt(v['hit_rate'])}</td>"
                         f"<td>{_fmt(v['cycles'])}</td></tr>")
        parts.append("</table>")

    attribution = report.get("attribution")
    if attribution and attribution["causes"]:
        parts.append(
            f"<h2>Cycle attribution</h2>"
            f"<p class='meta'>{attribution['total']} attributed cycles "
            f"(run clock {attribution['cycles']}); taxonomy from "
            f"<code>repro profile</code></p>")
        bar, legend = [], []
        for i, entry in enumerate(attribution["causes"]):
            color = _CAUSE_COLORS[i % len(_CAUSE_COLORS)]
            share = entry["share"] or 0.0
            bar.append(f"<span style='width:{share * 100:.2f}%;"
                       f"background:{color}' title='{_esc(entry['cause'])} "
                       f"{entry['cycles']}'></span>")
            legend.append(f"<span class='swatch' "
                          f"style='background:{color}'></span>"
                          f"{_esc(entry['cause'])} {share * 100:.1f}%")
        parts.append(f"<div class='stack'>{''.join(bar)}</div>"
                     f"<p class='meta'>{' &middot; '.join(legend)}</p>")
        parts.append("<table><tr><th class='l'>cause</th><th>cycles</th>"
                     "<th>share</th></tr>")
        for entry in attribution["causes"]:
            share = (f"{entry['share'] * 100:.1f}%"
                     if entry["share"] is not None else "&ndash;")
            parts.append(f"<tr><td class='l'>{_esc(entry['cause'])}</td>"
                         f"<td>{_fmt(entry['cycles'])}</td>"
                         f"<td>{share}</td></tr>")
        parts.append("</table>")
        if attribution["hotspots"]:
            parts.append("<h2>Hotspots (per-PC attributed cycles)</h2>"
                         "<table><tr><th>core</th><th>pc</th>"
                         "<th class='l'>label</th><th class='l'>source</th>"
                         "<th>cycles</th></tr>")
            for row in attribution["hotspots"]:
                pc = row["pc"] if row.get("pc", 0) >= 0 else "&ndash;"
                parts.append(f"<tr><td>{_fmt(row.get('core'))}</td>"
                             f"<td>{pc}</td>"
                             f"<td class='l'>{_esc(row.get('label', ''))}</td>"
                             f"<td class='l'><code>"
                             f"{_esc(row.get('text', ''))}</code></td>"
                             f"<td>{_fmt(row.get('cycles'))}</td></tr>")
            parts.append("</table>")

    if report.get("engine_gate"):
        parts.append(
            "<h2>Threaded-code engine gate</h2>"
            "<p class='meta'>compiled-engine speedup over the interpreted "
            "hot path, measured back-to-back on one host (machine-"
            "independent ratio; hard floor per entry)</p>"
            "<table><tr><th class='l'>bench</th><th>speedup</th>"
            "<th>floor</th><th class='l'>grade</th></tr>")
        for g in report["engine_gate"]:
            parts.append(
                f"<tr class='sev-{g['severity']}'>"
                f"<td class='l'>{_esc(g['name'])}</td>"
                f"<td>{g['speedup']:.2f}x</td>"
                f"<td>{g['floor']:.2f}x</td>"
                f"<td class='l'>{_esc(g['severity'])}</td></tr>")
        parts.append("</table>")

    if report.get("history"):
        parts.append(
            f"<h2>History</h2>"
            f"<p class='meta'>host-rate trajectories from the run ledger "
            f"{_esc(report.get('ledger_path', '?'))} &middot; see "
            f"<code>repro history</code> for compares and the "
            f"trajectory-aware <code>--check</code> gate</p>"
            "<table><tr><th class='l'>digest</th><th class='l'>config</th>"
            "<th>runs</th><th>last instr/s</th><th class='l'>trend</th>"
            "<th class='l'>last seen (utc)</th></tr>")
        for h in report["history"]:
            parts.append(
                f"<tr><td class='l'><code>{_esc(h['digest'])}</code></td>"
                f"<td class='l'>{_esc(h['label'])}</td>"
                f"<td>{_fmt(h['runs'])}</td>"
                f"<td>{_fmt(h['last_rate'], 6)}</td>"
                f"<td class='l'>{svg_sparkline(h['rates'])}</td>"
                f"<td class='l'>{_esc(h.get('last_seen') or '')}</td></tr>")
        parts.append("</table>")

    if report["deltas"]:
        parts.append(
            f"<h2>Baseline deltas</h2>"
            f"<p class='meta'>vs {_esc(report.get('baseline_path', '?'))} "
            f"&middot; regression threshold "
            f"{report['threshold'] * 100:.0f}%</p>"
            "<table><tr><th class='l'>metric</th><th>current</th>"
            "<th>baseline</th><th>delta</th><th class='l'>grade</th></tr>")
        for d in report["deltas"]:
            delta = (f"{d['delta'] * 100:+.1f}%"
                     if d["delta"] is not None else "&ndash;")
            parts.append(
                f"<tr class='sev-{d['severity']}'>"
                f"<td class='l'>{_esc(d['name'])}</td>"
                f"<td>{_fmt(d['current'], 6)}</td>"
                f"<td>{_fmt(d['baseline'], 6)}</td>"
                f"<td>{delta}</td>"
                f"<td class='l'>{_esc(d['severity'])}</td></tr>")
        parts.append("</table>")

    parts.append("</body></html>")
    return "".join(parts)


def write_report(sweep_dir: str, out_path: str,
                 baseline: Optional[str] = None,
                 threshold: float = DEFAULT_THRESHOLD,
                 ledger: Optional[str] = None) -> Dict:
    """Build + render + write in one call; returns the report dict."""
    report = build_report(sweep_dir, baseline=baseline, threshold=threshold,
                          ledger=ledger)
    with open(out_path, "w") as f:
        f.write(render_html(report))
    return report
