"""Report generation: turn Stats trees and experiment rows into artifacts.

Provides the export surface a downstream user needs to get simulator data
out of Python: flat CSV/JSON dumps of stats trees, side-by-side comparison
tables between runs, and simple text histograms for quick terminal
inspection (the simulator has no plotting dependency by design).
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Dict, Iterable, List, Optional, Sequence

from .counters import Stats


def stats_to_dict(stats: Stats) -> Dict[str, float]:
    """Flatten a stats tree into a plain dict (dotted keys)."""
    return stats.as_dict()


def stats_to_json(stats: Stats, indent: int = 1) -> str:
    """Flattened stats tree as a JSON object string."""
    return json.dumps(stats_to_dict(stats), indent=indent, sort_keys=True)


def stats_to_csv(stats: Stats) -> str:
    """Two-column CSV: counter path, value."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["counter", "value"])
    for key, value in sorted(stats_to_dict(stats).items()):
        writer.writerow([key, value])
    return buf.getvalue()


def rows_to_csv(rows: Sequence[Dict]) -> str:
    """Experiment rows (list of dicts) to CSV with the union of columns."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def compare(runs: Dict[str, Stats], keys: Optional[Iterable[str]] = None,
            baseline: Optional[str] = None) -> str:
    """Side-by-side comparison table of several runs' counters.

    ``runs`` maps run labels to stats trees.  ``keys`` restricts the rows
    (default: union of all counters).  With ``baseline`` set, every other
    column also shows the ratio to the baseline run.
    """
    flats = {label: stats_to_dict(s) for label, s in runs.items()}
    if keys is None:
        all_keys: List[str] = []
        for flat in flats.values():
            for key in flat:
                if key not in all_keys:
                    all_keys.append(key)
        keys = sorted(all_keys)
    labels = list(runs)
    header = ["counter"] + labels
    lines = []
    for key in keys:
        row = [key]
        for label in labels:
            value = flats[label].get(key)
            if value is None:
                row.append("--")
            elif baseline and label != baseline and flats[baseline].get(key):
                row.append(f"{value:g} ({value / flats[baseline][key]:.2f}x)")
            else:
                row.append(f"{value:g}")
        lines.append(row)
    widths = [max(len(r[i]) for r in [header] + lines) for i in range(len(header))]
    out = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in lines:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


#: eight-level block ramp used by :func:`sparkline`
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None,
              lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """Render a numeric series as a one-line unicode sparkline.

    ``width`` resamples the series (bucket means) to at most that many
    characters; ``lo``/``hi`` pin the scale (default: the series range),
    letting several sparklines share one axis.

    Degenerate inputs render rather than raise: an empty series gives
    ``""``; constant and single-point series give flat baselines (a zero
    span never divides); ``width < 1`` is clamped to one column; NaN/inf
    samples are excluded from autoscaling and drawn as baseline blocks.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None:
        width = max(1, int(width))
        if len(vals) > width:
            per = len(vals) / width
            vals = [sum(vals[int(i * per):max(int(i * per) + 1,
                                              int((i + 1) * per))])
                    / max(1, int((i + 1) * per) - int(i * per))
                    for i in range(width)]
    finite = [v for v in vals if math.isfinite(v)]
    if not finite:
        return _SPARK_BLOCKS[0] * len(vals)
    lo = min(finite) if lo is None else lo
    hi = max(finite) if hi is None else hi
    span = hi - lo
    if span <= 0 or not math.isfinite(span):
        return _SPARK_BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        if not math.isfinite(v):
            out.append(_SPARK_BLOCKS[0])
            continue
        idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1) + 0.5)
        out.append(_SPARK_BLOCKS[max(0, min(len(_SPARK_BLOCKS) - 1, idx))])
    return "".join(out)


def render_intervals(rows: Sequence[Dict], columns: Sequence[str],
                     width: int = 60, label_width: int = 22) -> str:
    """Sparkline panel over interval-sampler rows (one line per metric).

    ``rows`` are the dicts produced by
    :class:`repro.telemetry.IntervalSampler`; ``columns`` names the numeric
    fields to plot.  Fields absent from every row are skipped.
    """
    if not rows:
        return "(no interval samples)"
    lines = []
    c0, c1 = rows[0].get("cycle", 0), rows[-1].get("cycle", 0)
    lines.append(f"{len(rows)} intervals, cycles {c0}..{c1}")
    for col in columns:
        series = [row[col] for row in rows if col in row
                  and isinstance(row[col], (int, float))]
        if not series:
            continue
        spark = sparkline(series, width=width)
        lines.append(f"{col:<{label_width}} {spark}  "
                     f"min={min(series):g} max={max(series):g} "
                     f"last={series[-1]:g}")
    return "\n".join(lines)


def render_attribution_table(snapshot: Dict, top: int = 10,
                             bar_width: int = 24) -> str:
    """Terminal view of a profiling snapshot (``repro profile``).

    ``snapshot`` is the plain-data dict produced by
    :meth:`repro.profiling.ProfileSession.snapshot`: a per-cause cycle
    table (taxonomy display order, shares, unicode bars) followed by the
    ``top`` hottest per-PC rows mapped to kernel source.
    """
    cycles = snapshot.get("cycles", 0) or 0
    causes = snapshot.get("causes", {})
    total = sum(causes.values())
    lines = [f"cycle attribution: {total} cycles over "
             f"{len(snapshot.get('cores', []))} core(s)"]
    order = [c for c in snapshot.get("taxonomy", sorted(causes)) if c in causes]
    order += [c for c in sorted(causes) if c not in order]
    peak = max(causes.values(), default=0)
    for cause in order:
        n = causes[cause]
        share = n / total if total else 0.0
        bar = "█" * (n * bar_width // peak if peak else 0)
        lines.append(f"  {cause:<16} {n:>10} {share:>7.1%}  {bar}")
    lines.append(f"  {'total':<16} {total:>10} {1:>7.1%}"
                 if total else "  (no attributed cycles)")
    if cycles and total != cycles:
        lines.append(f"  WARNING: attributed {total} != run cycles {cycles}")

    hotspots = snapshot.get("hotspots", [])[:top] if top else []
    if hotspots:
        lines.append("")
        lines.append(f"top {len(hotspots)} hotspots (per-PC attributed cycles)")
        lines.append(f"  {'core':>4} {'pc':>4} {'label':<14} {'cycles':>8} "
                     f"{'share':>7}  source / top causes")
        for row in hotspots:
            top_causes = sorted(row.get("causes", {}).items(),
                                key=lambda kv: -kv[1])[:3]
            causes_txt = ", ".join(f"{c} {n}" for c, n in top_causes)
            share = row["cycles"] / total if total else 0.0
            pc = row["pc"] if row["pc"] >= 0 else "--"
            lines.append(f"  {row['core']:>4} {pc!s:>4} {row['label']:<14} "
                         f"{row['cycles']:>8} {share:>7.1%}  "
                         f"{row['text']}  [{causes_txt}]")
    return "\n".join(lines)


def render_attribution_diff(diff: Dict, base_label: str = "base",
                            other_label: str = "other",
                            top: int = 10) -> str:
    """Terminal view of :func:`repro.profiling.diff_snapshots` output.

    Positive deltas mean the second (``other``) config spends more cycles
    on that cause or pc; causes print largest absolute delta first.
    """
    lines = [f"cycle delta: {base_label} {diff.get('cycles_base', 0)} -> "
             f"{other_label} {diff.get('cycles_other', 0)} "
             f"({diff.get('cycles_delta', 0):+d} cycles)"]
    by_cause = diff.get("by_cause", {})
    if by_cause:
        lines.append(f"  {'cause':<16} {'delta':>10}")
        for cause in sorted(by_cause, key=lambda c: -abs(by_cause[c])):
            if by_cause[cause]:
                lines.append(f"  {cause:<16} {by_cause[cause]:>+10d}")
    dominant = diff.get("dominant", [])
    if dominant:
        lines.append(f"dominant causes: {', '.join(dominant[:5])}")
    by_pc = diff.get("by_pc", {})
    if by_pc and top:
        hot = sorted(by_pc.items(), key=lambda kv: -abs(kv[1]))[:top]
        lines.append(f"top {len(hot)} per-PC deltas")
        for pc, delta in hot:
            name = "<scheduler>" if str(pc) == "-1" else f"pc{pc}"
            lines.append(f"  {name:<12} {delta:>+10d}")
    return "\n".join(lines)


def text_histogram(values: Sequence[float], bins: int = 10, width: int = 40,
                   title: str = "") -> str:
    """ASCII histogram for terminal inspection of a metric distribution."""
    if not values:
        return f"{title}\n(no data)"
    lo, hi = min(values), max(values)
    if lo == hi:
        hi = lo + 1
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, c in enumerate(counts):
        left = lo + (hi - lo) * i / bins
        right = lo + (hi - lo) * (i + 1) / bins
        bar = "#" * (c * width // peak if peak else 0)
        lines.append(f"[{left:10.3f}, {right:10.3f})  {c:6d}  {bar}")
    return "\n".join(lines)
