"""Central registry of simulator counter names.

Every ``Stats.inc`` / ``Stats.set`` / ``Stats.max`` call site with a
literal key must draw the key from this registry — the names are stringly
typed at the call sites, so a typo would silently split one counter into
two.  The ``repro lint`` rule VRC008 enforces membership for literal keys
in ``src/`` (suppress a deliberate exception with ``# noqa: VRC008``).

Grouped by the subsystem that owns the name; a name may legitimately be
used by several subsystems (e.g. ``hits``/``misses`` by caches *and* the
VRMU) — the registry is one flat namespace because ``Stats`` namespaces
are positional (child trees), not part of the key.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = ["COUNTER_NAMES", "is_registered"]

COUNTER_NAMES: FrozenSet[str] = frozenset({
    # run-level summary (cores, node, ooo host)
    "cycles", "instructions", "ipc",
    # timeline engine (core/base.py)
    "icache_miss_stalls", "load_miss_stalls", "load_slot_stalls",
    "sq_full_stalls", "dcache_retries", "switches_suppressed",
    "context_switches", "flushed_instructions", "taken_branches",
    "threads_completed",
    # CGMT context storage (core/cgmt.py, core/fgmt.py)
    "context_fetches", "context_saves", "context_restores",
    # RF-prefetch cores (core/prefetch.py)
    "demand_context_fetches", "prefetched_switches",
    # ooo host commit-clock accounting (core/ooo.py, cycle_causes child)
    "commit_bw", "load_wait", "dataflow",
    # ViReC VRMU / tag store / rollback (virec/)
    "hits", "misses", "accesses", "victim_wait_cycles", "spill_evictions",
    "group_evictions", "context_prefetches", "flush_resets", "evictions",
    "task_context_drops", "rf_hit_rate", "rf_size", "overflow", "flushes",
    # dead-hint policies (virec/vrmu.py, repro.analysis.dataflow liveness)
    "dead_marks", "dead_evictions", "elided_writebacks",
    # BSI port (virec/bsi.py)
    "fills", "fill_backing_misses", "dummy_fills", "spills", "dirty_spills",
    "sysreg_reads", "sysreg_writes", "elided_spills",
    "spill_port_wait_cycles",
    # metadata-only pin releases (memory/cache.py)
    "metadata_unpins",
    # CSL prefetch decisions (virec/csl.py, memory/prefetcher.py)
    "prefetch_late_cycles", "prefetch_hits", "demand_fetches", "prefetches",
    "issued",
    # task pool (system/taskpool.py)
    "tasks_redispatched",
    # caches (memory/cache.py)
    "writebacks", "register_line_evictions", "forced_pinned_evictions",
    "writes", "under_fill_hits", "write_through", "mshr_full", "set_busy",
    "prefetch_fills", "line_invalidations",
    # DRAM (memory/dram.py)
    "row_hits", "row_empty", "row_misses", "busy_cycles",
    # crossbar (memory/crossbar.py)
    "queue_cycles", "requests",
    # fault injection (faults/injector.py)
    "faults_injected", "faults_masked", "faults_detected", "faults_escaped",
    "faults_corrected", "faults_spilled_to_backing", "bits_flipped",
    "recovery_cycles", "recovery_refills",
})


def is_registered(name: str) -> bool:
    """True when ``name`` is a known counter key."""
    return name in COUNTER_NAMES
