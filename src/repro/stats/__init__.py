"""Statistics: hierarchical counters and report/export utilities."""

from .counters import Stats
from .reporting import (
    compare,
    render_intervals,
    rows_to_csv,
    sparkline,
    stats_to_csv,
    stats_to_dict,
    stats_to_json,
    text_histogram,
)

__all__ = ["Stats", "compare", "render_intervals", "rows_to_csv", "sparkline",
           "stats_to_csv", "stats_to_dict", "stats_to_json", "text_histogram"]
