"""Execution backends: how a batch of independent runs is mapped.

The sweep machinery (``repro.system.simulator.sweep``,
``repro.system.sweeps.run_grid``, the experiment drivers) describes *what*
to simulate — a list of independent :class:`~repro.system.config.RunConfig`
items — and delegates *how* to one of these backends:

:class:`SerialBackend`
    In-process, one item at a time, in order.  The default, and the only
    mode with zero caveats (tracebacks point at the real frame, monkey-
    patched entry points apply, sessions/handles stay usable).

:class:`ProcessPoolBackend`
    A ``concurrent.futures.ProcessPoolExecutor`` over ``jobs`` worker
    processes using the **spawn** start method (fork-safety: the simulator
    keeps large object graphs and open files the child must not inherit
    mid-mutation).  Items are submitted in chunks and results are returned
    **in input order** (``executor.map`` semantics), so a parallel sweep is
    a drop-in replacement for a serial one: same result list, same digest.

Determinism contract: for pure functions of their item, ``map`` returns
results byte-identical to SerialBackend regardless of ``jobs``/chunking —
ordering is by input position, never completion time.  The simulator holds
its end of the bargain by keeping every run self-contained (per-run RNGs
seeded from the config, no dependence on set/dict iteration order of
unstable keys — lint rule VRC003).

Worker functions passed to :meth:`ProcessPoolBackend.map` must be module
top-level callables (picklable by reference) and must themselves catch
expected per-item failures into return values (see ``repro.exec.workers``)
— an exception escaping a worker aborts the whole map, which is the right
behavior only for driver bugs.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ExecBackend", "ProcessPoolBackend", "SerialBackend",
           "resolve_backend"]


class ExecBackend:
    """Maps a worker function over items; subclasses define the 'how'."""

    #: worker-process count (1 for in-process backends)
    jobs: int = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} jobs={self.jobs}>"


class SerialBackend(ExecBackend):
    """In-process, in-order execution (the zero-caveat default)."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


def _repro_root() -> str:
    """Directory that must be on ``sys.path`` for ``import repro``."""
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class ProcessPoolBackend(ExecBackend):
    """Spawn-based process-pool execution with deterministic ordering.

    ``chunksize=None`` picks ``ceil(len(items) / (jobs * 4))`` — large
    enough to amortize task pickling, small enough to load-balance a grid
    whose per-config cost varies by core type.
    """

    def __init__(self, jobs: int, chunksize: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.chunksize = chunksize

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            # nothing to parallelize; skip the pool (and its spawn cost)
            return [fn(item) for item in items]
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # spawn children re-import the worker's module from scratch; make
        # sure they can resolve `import repro` even when the parent got it
        # via sys.path manipulation rather than an exported PYTHONPATH
        root = _repro_root()
        existing = os.environ.get("PYTHONPATH", "")
        if root not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (root + os.pathsep + existing
                                        if existing else root)

        chunksize = self.chunksize
        if chunksize is None:
            chunksize = -(-len(items) // (self.jobs * 4))  # ceil div
        ctx = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as ex:
            # executor.map yields results in input order — completion
            # order never leaks into the result list
            return list(ex.map(fn, items, chunksize=max(1, chunksize)))


def resolve_backend(jobs: Optional[int] = None,
                    backend: Optional[ExecBackend] = None) -> ExecBackend:
    """The backend for a ``jobs=N`` request (explicit backend wins).

    ``jobs=None`` consults the ``REPRO_JOBS`` environment variable, then
    defaults to serial.  ``jobs=0`` means "all cores".
    """
    if backend is not None:
        return backend
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)
