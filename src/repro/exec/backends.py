"""Execution backends: how a batch of independent runs is mapped.

The sweep machinery (``repro.system.simulator.sweep``,
``repro.system.sweeps.run_grid``, the experiment drivers) describes *what*
to simulate — a list of independent :class:`~repro.system.config.RunConfig`
items — and delegates *how* to one of these backends:

:class:`SerialBackend`
    In-process, one item at a time, in order.  The default, and the only
    mode with zero caveats (tracebacks point at the real frame, monkey-
    patched entry points apply, sessions/handles stay usable).

:class:`ProcessPoolBackend`
    A ``concurrent.futures.ProcessPoolExecutor`` over ``jobs`` worker
    processes using the **spawn** start method (fork-safety: the simulator
    keeps large object graphs and open files the child must not inherit
    mid-mutation).  Items are submitted as explicit per-chunk futures and
    results are returned **in input order**, so a parallel sweep is a
    drop-in replacement for a serial one: same result list, same digest.

Determinism contract: for pure functions of their item, ``map`` returns
results byte-identical to SerialBackend regardless of ``jobs``/chunking —
ordering is by input position, never completion time.  The simulator holds
its end of the bargain by keeping every run self-contained (per-run RNGs
seeded from the config, no dependence on set/dict iteration order of
unstable keys — lint rule VRC003).

Crash containment: an abrupt worker death (segfault, OOM kill,
``os._exit``) breaks a ``ProcessPoolExecutor`` permanently — every pending
future raises ``BrokenProcessPool`` and, naively, one bad run aborts the
whole sweep with no indication of *which* item was at fault.
:meth:`ProcessPoolBackend.map` instead marks the likely-culpable chunk's
items with :class:`WorkerCrash` sentinel records (carrying the chunk's
input positions and the executor's exit context), respawns a fresh pool,
and retries the remaining broken chunks.  Each respawn permanently
resolves at least one chunk, so the loop converges; a mis-blamed innocent
chunk's true culprit crashes again on retry and is then blamed correctly.
The sweep layer converts sentinels into per-config
:class:`~repro.errors.RunFailure` records (see
:meth:`WorkerCrash.to_error`).

Worker functions passed to :meth:`ProcessPoolBackend.map` must be module
top-level callables (picklable by reference) and must themselves catch
expected per-item failures into return values (see ``repro.exec.workers``)
— an exception escaping a worker aborts the whole map, which is the right
behavior only for driver bugs.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ExecBackend", "ProcessPoolBackend", "SerialBackend",
           "WorkerCrash", "resolve_backend"]


class WorkerCrash:
    """Sentinel left at an item's result position when its worker died.

    Not an exception: ``map`` still returns a full, input-ordered result
    list, and the caller decides whether a lost item is fatal.  The true
    culprit inside a multi-item chunk is unknowable (the worker never
    reported back), so the whole chunk is marked and ``chunk_indices``
    names every input position that went down with it.
    """

    __slots__ = ("index", "chunk_indices", "context", "attempt")

    def __init__(self, index: int, chunk_indices: List[int],
                 context: str = "", attempt: int = 1) -> None:
        self.index = index
        self.chunk_indices = list(chunk_indices)
        self.context = context
        self.attempt = attempt

    def to_error(self):
        """The :class:`~repro.errors.WorkerCrashError` form of this record."""
        from ..errors import WorkerCrashError
        peers = [i for i in self.chunk_indices if i != self.index]
        detail = (f" (chunk peers also lost: {peers})" if peers else "")
        return WorkerCrashError(
            f"worker process died abruptly while running item "
            f"{self.index}{detail}: {self.context or 'no exit context'}",
            indices=self.chunk_indices, context=self.context)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"WorkerCrash(index={self.index}, "
                f"chunk_indices={self.chunk_indices}, "
                f"attempt={self.attempt})")


class ExecBackend:
    """Maps a worker function over items; subclasses define the 'how'."""

    #: worker-process count (1 for in-process backends)
    jobs: int = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} jobs={self.jobs}>"


class SerialBackend(ExecBackend):
    """In-process, in-order execution (the zero-caveat default)."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


def _repro_root() -> str:
    """Directory that must be on ``sys.path`` for ``import repro``."""
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _run_chunk(fn: Callable[[T], R], chunk: List[T]) -> List[R]:
    """Worker-side chunk body (module top level: pickled by reference)."""
    return [fn(item) for item in chunk]


class ProcessPoolBackend(ExecBackend):
    """Spawn-based process-pool execution with deterministic ordering.

    ``chunksize=None`` picks ``ceil(len(items) / (jobs * 4))`` — large
    enough to amortize task pickling, small enough to load-balance a grid
    whose per-config cost varies by core type.
    """

    def __init__(self, jobs: int, chunksize: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.chunksize = chunksize

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            # nothing to parallelize; skip the pool (and its spawn cost)
            return [fn(item) for item in items]
        import multiprocessing

        # spawn children re-import the worker's module from scratch; make
        # sure they can resolve `import repro` even when the parent got it
        # via sys.path manipulation rather than an exported PYTHONPATH
        root = _repro_root()
        existing = os.environ.get("PYTHONPATH", "")
        if root not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (root + os.pathsep + existing
                                        if existing else root)

        chunksize = self.chunksize
        if chunksize is None:
            chunksize = -(-len(items) // (self.jobs * 4))  # ceil div
        chunksize = max(1, chunksize)
        chunks: List[Tuple[List[int], List[T]]] = []
        for start in range(0, len(items), chunksize):
            positions = list(range(start, min(start + chunksize, len(items))))
            chunks.append((positions, [items[p] for p in positions]))

        ctx = multiprocessing.get_context("spawn")
        results: List[Optional[R]] = [None] * len(items)
        pending = list(range(len(chunks)))
        attempt = 0
        while pending:
            attempt += 1
            pending = self._run_round(fn, chunks, pending, results,
                                      ctx, attempt)
        return results  # type: ignore[return-value]

    def _run_round(self, fn, chunks, pending, results, ctx,
                   attempt: int) -> List[int]:
        """Run one pool generation over ``pending`` chunk ids.

        Fills ``results`` in place; returns the chunk ids that must be
        retried in a fresh pool.  On a broken pool, the first broken chunk
        in submission order is blamed (its items become
        :class:`WorkerCrash` sentinels) and the rest are retried — so
        every generation resolves at least one chunk and the retry loop
        terminates.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        workers = min(self.jobs, len(pending))
        broken: List[Tuple[int, str]] = []
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as ex:
            futures = [(cid, ex.submit(_run_chunk, fn, chunks[cid][1]))
                       for cid in pending]
            # collect in submission (= input) order — completion order
            # never leaks into the result list
            for cid, fut in futures:
                try:
                    out = fut.result()
                except BrokenProcessPool as exc:
                    broken.append((cid, str(exc) or type(exc).__name__))
                else:
                    for pos, r in zip(chunks[cid][0], out):
                        results[pos] = r
        if not broken:
            return []
        suspect, context = broken[0]
        positions = chunks[suspect][0]
        for pos in positions:
            results[pos] = WorkerCrash(index=pos, chunk_indices=positions,
                                       context=context, attempt=attempt)
        return [cid for cid, _ in broken[1:]]


def resolve_backend(jobs: Optional[int] = None,
                    backend: Optional[ExecBackend] = None) -> ExecBackend:
    """The backend for a ``jobs=N`` request (explicit backend wins).

    ``jobs=None`` consults the ``REPRO_JOBS`` environment variable, then
    defaults to serial.  ``jobs=0`` means "all cores".
    """
    if backend is not None:
        return backend
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)
