"""Cross-process span tracing for the sweep fleet.

Pool workers are observability black holes by default: the parent submits
a chunk, blocks, and gets results back with no idea how long each run sat
queued, built, simulated, or serialized.  This module closes that gap:

* **Worker side** — :class:`SpanRecorder` wraps one task's phases
  (``queue_wait``, ``setup``, ``simulate``, ``serialize``) into compact
  picklable records ``(index, pid, name, start_us, dur_us)``.  Timestamps
  are host monotonic microseconds relative to the sweep's ``t0``; on
  Linux ``CLOCK_MONOTONIC`` is system-wide, so parent and worker stamps
  share one axis.
* **Parent side** — :class:`SweepTrace` merges every worker's span records
  with the parent's own :class:`~repro.telemetry.EventTracer` ring into a
  single Chrome-trace/Perfetto file: the parent is pid 0, each worker
  process a distinct pid track, and every task gets a **flow arrow** from
  its parent-side dispatch instant to its worker-side span — pool
  imbalance and chunking overhead become visible at a glance.

These spans measure the *reproduction tool*, not the simulated machine:
like ``host_profiles`` they never feed back into simulated timing and are
excluded from reproducibility digests.  (That is also why this module is
on the linter's wall-clock allowlist — see VRC002.)
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SpanRecorder", "SweepTrace", "now_s", "task_spec"]

#: span record: (task index, worker pid, name, start_us, dur_us)
SpanRecord = Tuple[int, int, str, int, int]

#: the parent's pid track in merged traces (real pids are never 0)
PARENT_PID = 0


def now_s() -> float:
    """Monotonic seconds (comparable across processes on one host)."""
    return time.monotonic()


def task_spec(t0: float, spans: bool = True,
              events_path: Optional[str] = None,
              heartbeat_dir: Optional[str] = None) -> Dict:
    """The per-task observability spec shipped to workers.

    ``t0`` anchors every span timestamp; ``t_submit`` (stamped here) lets
    the worker compute its queue-wait.  All values are picklable
    primitives — the spec rides inside the task tuple.
    """
    return {"t0": t0, "t_submit": now_s(), "spans": spans,
            "events_path": events_path, "heartbeat_dir": heartbeat_dir}


class SpanRecorder:
    """Worker-side phase timer for one task (cheap, allocation-light)."""

    def __init__(self, obs: Dict, index: int) -> None:
        self.t0 = obs["t0"]
        self.index = index
        self.pid = os.getpid()
        self.records: List[SpanRecord] = []
        started = now_s()
        submit = obs.get("t_submit")
        if submit is not None and started > submit:
            self._push("queue_wait", submit, started)
        self._phase_start = started

    def _push(self, name: str, start: float, end: float) -> None:
        self.records.append((self.index, self.pid, name,
                             int((start - self.t0) * 1e6),
                             max(0, int((end - start) * 1e6))))

    def phase(self, name: str) -> None:
        """Close the running phase under ``name`` and start the next."""
        now = now_s()
        self._push(name, self._phase_start, now)
        self._phase_start = now


class SweepTrace:
    """Parent-side merge of dispatch events and worker span records.

    Owns an :class:`~repro.telemetry.EventTracer` for the parent's own
    events (sweep phases, per-task dispatch); :meth:`merge_spans` folds in
    worker records; :meth:`chrome_trace` exports the combined timeline.
    """

    def __init__(self, label: str = "sweep") -> None:
        from ..telemetry import EventTracer
        self.label = label
        self.t0 = now_s()
        self.events = EventTracer(max_events=500_000)
        self.events.register_track(PARENT_PID, 0, "dispatch")
        self._dispatch_us: Dict[int, int] = {}
        self._worker_pids: List[int] = []

    # -- parent-side emission ----------------------------------------------
    def _us(self, t: Optional[float] = None) -> int:
        return int(((now_s() if t is None else t) - self.t0) * 1e6)

    def parent_slice(self, name: str, start_s: float,
                     args: Optional[dict] = None) -> None:
        """A completed parent-side phase (``start_s`` from :func:`now_s`)."""
        start = self._us(start_s)
        self.events.complete(name, start, self._us() - start,
                             PARENT_PID, 0, args=args)

    def dispatch(self, index: int, args: Optional[dict] = None) -> None:
        """Record that task ``index`` was handed to the backend now."""
        ts = self._us()
        self._dispatch_us[index] = ts
        self.events.instant("dispatch", ts, PARENT_PID, 0,
                            args=dict(args or {}, index=index))

    # -- worker-side merge --------------------------------------------------
    def merge_spans(self, records: Sequence[SpanRecord]) -> None:
        """Fold one task's worker span records into the trace.

        Each worker pid becomes its own Perfetto process track; the task's
        first span gets the parent->worker flow arrow's ``f`` end, bound to
        the matching ``s`` emitted at the parent's dispatch instant.
        """
        first = True
        for index, pid, name, start_us, dur_us in records:
            if pid not in self._worker_pids:
                self._worker_pids.append(pid)
                self.events.register_process(pid, f"worker {pid}")
                self.events.register_track(pid, 0, "tasks")
            self.events.complete(name, start_us, dur_us, pid, 0,
                                 args={"index": index})
            if first:
                first = False
                t_dispatch = self._dispatch_us.get(index, start_us)
                fid = self.events.next_flow_id()
                self.events.emit("task", "s", t_dispatch, PARENT_PID, 0,
                                 flow=fid)
                self.events.emit("task", "f", start_us, pid, 0,
                                 flow=fid, bind="e")

    @property
    def worker_pids(self) -> List[int]:
        """Distinct worker pids merged so far, in first-seen order."""
        return list(self._worker_pids)

    # -- export ------------------------------------------------------------
    def chrome_trace(self, metadata: Optional[dict] = None) -> dict:
        meta = {"trace": self.label, "clock": "host monotonic (us)",
                "workers": len(self._worker_pids)}
        if metadata:
            meta.update(metadata)
        self.events.register_process(PARENT_PID, f"{self.label} parent")
        return self.events.chrome_trace(metadata=meta)

    def write(self, path: str, metadata: Optional[dict] = None) -> None:
        import json
        with open(path, "w") as f:
            json.dump(self.chrome_trace(metadata), f, sort_keys=True)
