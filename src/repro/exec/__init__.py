"""Execution backends for batch simulation (serial / process-parallel).

See :mod:`repro.exec.backends` for the backend contract, the determinism
guarantees, and worker-crash containment; :mod:`repro.exec.spans` for
cross-process span tracing; and ``docs/architecture.md`` ("Execution
backends & instrumentation bus") for the design discussion.
"""

from .backends import (ExecBackend, ProcessPoolBackend, SerialBackend,
                       WorkerCrash, resolve_backend)
from .spans import SpanRecorder, SweepTrace, task_spec
from .workers import grid_worker, strip_result, sweep_worker

__all__ = ["ExecBackend", "ProcessPoolBackend", "SerialBackend",
           "SpanRecorder", "SweepTrace", "WorkerCrash", "grid_worker",
           "resolve_backend", "strip_result", "sweep_worker", "task_spec"]
