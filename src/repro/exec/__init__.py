"""Execution backends for batch simulation (serial / process-parallel).

See :mod:`repro.exec.backends` for the backend contract and the
determinism guarantees, and ``docs/architecture.md`` ("Execution backends
& instrumentation bus") for the design discussion.
"""

from .backends import (ExecBackend, ProcessPoolBackend, SerialBackend,
                       resolve_backend)
from .workers import grid_worker, strip_result, sweep_worker

__all__ = ["ExecBackend", "ProcessPoolBackend", "SerialBackend",
           "grid_worker", "resolve_backend", "strip_result", "sweep_worker"]
