"""Top-level worker functions for :class:`~repro.exec.ProcessPoolBackend`.

Process-pool workers are pickled *by reference* (module + name), so they
must live at module top level; their arguments and return values cross a
process boundary, so both must pickle cleanly.  That drives two rules
encoded here:

* **Results are stripped before returning.**  A
  :class:`~repro.system.simulator.RunResult` carries the live telemetry
  session and sanitizer handles, which hold references to cores (bound
  methods, caches) that neither pickle nor mean anything in the parent.
  ``strip_result`` drops them — and folds a live metrics session down to
  its plain snapshot dict, which *does* pickle and is all the parent
  needs for merging.  Everything the sweep machinery consumes (config,
  cycles, instructions, ipc, rf_hit_rate, stats, host_profile) survives,
  so result digests are unaffected.

* **Expected failures are return values, not exceptions.**  Each worker
  catches :class:`~repro.errors.SimulationError` into a structured
  :class:`~repro.errors.RunFailure` (picklable primitives) plus a
  best-effort copy of the original exception for fail-fast mode; an
  exception that escapes a worker aborts the whole map, which is reserved
  for genuine driver bugs.

**Observability is a trailing opt-in.**  Both workers accept their
historical task tuple unchanged, or the same tuple with one extra
element: the ``obs`` spec built by :func:`repro.exec.spans.task_spec`.
With a spec attached the worker records per-phase spans (queue-wait,
setup, simulate, serialize), touches a heartbeat file the live monitor
ages, and appends row events to the sweep's JSONL event log — and its
return value grows one trailing element carrying the span records.
Callers that never pass a spec see byte-identical behavior to before.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import asdict
from typing import Optional, Tuple

from ..errors import RunFailure, SimulationError
from .spans import SpanRecorder, now_s

__all__ = ["grid_worker", "strip_result", "sweep_worker"]


def strip_result(result):
    """Drop the unpicklable session handles from a RunResult (in place).

    The metrics and profile sessions are the exceptions: their snapshots
    are plain data the parent consumes (fleet registry merge, attribution
    reports), so they are folded down rather than dropped.
    """
    if result is not None:
        result.telemetry = None
        result.sanitizer = None
        metrics = getattr(result, "metrics", None)
        if metrics is not None and hasattr(metrics, "snapshot"):
            result.metrics = metrics.snapshot()
        profile = getattr(result, "profile", None)
        if profile is not None and hasattr(profile, "snapshot"):
            result.profile = profile.snapshot()
    return result


def _portable_exc(exc: Optional[BaseException]) -> Optional[BaseException]:
    """The exception itself if it survives pickling, else a faithful stand-in.

    Some simulation errors carry rich attachments (e.g. a fault site
    record) that may not reconstruct across a process boundary; fail-fast
    callers still deserve the right exception *type* and message.
    """
    if exc is None:
        return None
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # pickle probe: any failure means re-wrap  # noqa: VRC007
        try:
            return type(exc)(str(exc))
        except Exception:  # last-resort stand-in construction  # noqa: VRC007
            return SimulationError(f"{type(exc).__name__}: {exc}")


# -- observability side-channels (best-effort, never fail the run) ----------
def _heartbeat(obs) -> None:
    """Touch this worker's heartbeat file (monitor reads the mtime age)."""
    hb_dir = obs.get("heartbeat_dir")
    if not hb_dir:
        return
    try:
        with open(os.path.join(hb_dir, f"{os.getpid()}.hb"), "w") as f:
            f.write(str(os.getpid()))
    except OSError:
        pass


def _append_event(obs, ev: str, index: int, **fields) -> None:
    """Append one event row to the sweep's JSONL log.

    Single ``O_APPEND`` write of one line — atomic for lines under
    ``PIPE_BUF``, so concurrent workers never interleave mid-row.
    """
    path = obs.get("events_path")
    if not path:
        return
    row = {"ev": ev, "index": index, "pid": os.getpid(),
           "t": round(now_s() - obs["t0"], 6)}
    row.update(fields)
    try:
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, (json.dumps(row, sort_keys=True) + "\n").encode())
        finally:
            os.close(fd)
    except OSError:
        pass


def _measure_serialize(rec: Optional[SpanRecorder], result) -> None:
    """Time one pickle of the stripped result as the ``serialize`` span.

    The pool pickles the return value again on the way out; this measured
    copy is a faithful stand-in for that cost (same object, same protocol).
    """
    if rec is None or result is None:
        return
    try:
        pickle.dumps(result)
    except Exception:  # measurement probe only  # noqa: VRC007
        pass
    rec.phase("serialize")


def sweep_worker(task):
    """Run one sweep config: ``(index, cfg, check[, obs])`` -> tagged result.

    Returns ``("ok", result)`` or ``("err", failure, exception)``; with an
    ``obs`` spec attached, each gains a trailing span-record list.
    """
    index, cfg, check = task[:3]
    obs = task[3] if len(task) > 3 else None
    if obs is None:
        from ..system.simulator import run_config
        try:
            return ("ok", strip_result(run_config(cfg, check=check)))
        except SimulationError as exc:
            failure = RunFailure.from_exception(exc, index=index,
                                                config=asdict(cfg))
            return ("err", failure, _portable_exc(exc))

    rec = SpanRecorder(obs, index) if obs.get("spans") else None
    _heartbeat(obs)
    _append_event(obs, "row_start", index)
    from ..system.simulator import run_config
    if rec is not None:
        rec.phase("setup")
    try:
        result = run_config(cfg, check=check)
        if rec is not None:
            rec.phase("simulate")
        result = strip_result(result)
        _measure_serialize(rec, result)
        _heartbeat(obs)
        _append_event(obs, "row_ok", index, cycles=result.cycles)
        return ("ok", result, rec.records if rec else [])
    except SimulationError as exc:
        if rec is not None:
            rec.phase("simulate")
        failure = RunFailure.from_exception(exc, index=index,
                                            config=asdict(cfg))
        _heartbeat(obs)
        _append_event(obs, "row_fail", index,
                      error=type(exc).__name__)
        return ("err", failure, _portable_exc(exc),
                rec.records if rec else [])


def grid_worker(task):
    """Run one grid config through the resilient isolated runner.

    ``task`` mirrors :func:`repro.system.sweeps._run_isolated`'s signature:
    ``(index, cfg, check, retries, timeout_s, max_cycles, key[, obs])``.
    The SIGALRM wall-clock watchdog still works here — pool tasks execute
    on the worker process's main thread.  Returns
    ``(result, failure, exc)``, plus a trailing span-record list when an
    ``obs`` spec is attached.
    """
    index, cfg, check, retries, timeout_s, max_cycles, key = task[:7]
    obs = task[7] if len(task) > 7 else None
    from ..system.sweeps import _run_isolated
    if obs is None:
        result, failure, exc = _run_isolated(index, cfg, check, retries,
                                             timeout_s, max_cycles, key)
        return strip_result(result), failure, _portable_exc(exc)

    rec = SpanRecorder(obs, index) if obs.get("spans") else None
    _heartbeat(obs)
    _append_event(obs, "row_start", index, key=key)
    if rec is not None:
        rec.phase("setup")
    result, failure, exc = _run_isolated(index, cfg, check, retries,
                                         timeout_s, max_cycles, key)
    if rec is not None:
        rec.phase("simulate")
    result = strip_result(result)
    _measure_serialize(rec, result)
    _heartbeat(obs)
    if failure is None:
        _append_event(obs, "row_ok", index, key=key,
                      cycles=result.cycles if result else None)
    else:
        _append_event(obs, "row_fail", index, key=key,
                      error=failure.error_type,
                      attempts=failure.attempts)
    return (result, failure, _portable_exc(exc),
            rec.records if rec else [])
