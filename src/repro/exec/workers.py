"""Top-level worker functions for :class:`~repro.exec.ProcessPoolBackend`.

Process-pool workers are pickled *by reference* (module + name), so they
must live at module top level; their arguments and return values cross a
process boundary, so both must pickle cleanly.  That drives two rules
encoded here:

* **Results are stripped before returning.**  A
  :class:`~repro.system.simulator.RunResult` carries the live telemetry
  session and sanitizer handles, which hold references to cores (bound
  methods, caches) that neither pickle nor mean anything in the parent.
  ``strip_result`` drops them; everything the sweep machinery consumes
  (config, cycles, instructions, ipc, rf_hit_rate, stats, host_profile)
  survives, so result digests are unaffected.

* **Expected failures are return values, not exceptions.**  Each worker
  catches :class:`~repro.errors.SimulationError` into a structured
  :class:`~repro.errors.RunFailure` (picklable primitives) plus a
  best-effort copy of the original exception for fail-fast mode; an
  exception that escapes a worker aborts the whole map, which is reserved
  for genuine driver bugs.
"""

from __future__ import annotations

import pickle
from dataclasses import asdict
from typing import Optional, Tuple

from ..errors import RunFailure, SimulationError

__all__ = ["grid_worker", "strip_result", "sweep_worker"]


def strip_result(result):
    """Drop the unpicklable session handles from a RunResult (in place)."""
    if result is not None:
        result.telemetry = None
        result.sanitizer = None
    return result


def _portable_exc(exc: Optional[BaseException]) -> Optional[BaseException]:
    """The exception itself if it survives pickling, else a faithful stand-in.

    Some simulation errors carry rich attachments (e.g. a fault site
    record) that may not reconstruct across a process boundary; fail-fast
    callers still deserve the right exception *type* and message.
    """
    if exc is None:
        return None
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        try:
            return type(exc)(str(exc))
        except Exception:
            return SimulationError(f"{type(exc).__name__}: {exc}")


def sweep_worker(task: Tuple[int, object, bool]):
    """Run one sweep config: ``(index, cfg, check)`` -> tagged result.

    Returns ``("ok", result)`` or ``("err", failure, exception)``.
    """
    index, cfg, check = task
    from ..system.simulator import run_config
    try:
        return ("ok", strip_result(run_config(cfg, check=check)))
    except SimulationError as exc:
        failure = RunFailure.from_exception(exc, index=index,
                                            config=asdict(cfg))
        return ("err", failure, _portable_exc(exc))


def grid_worker(task):
    """Run one grid config through the resilient isolated runner.

    ``task`` mirrors :func:`repro.system.sweeps._run_isolated`'s signature:
    ``(index, cfg, check, retries, timeout_s, max_cycles, key)``.  The
    SIGALRM wall-clock watchdog still works here — pool tasks execute on
    the worker process's main thread.
    """
    index, cfg, check, retries, timeout_s, max_cycles, key = task
    from ..system.sweeps import _run_isolated
    result, failure, exc = _run_isolated(index, cfg, check, retries,
                                         timeout_s, max_cycles, key)
    return strip_result(result), failure, _portable_exc(exc)
