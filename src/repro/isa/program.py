"""Program container: assembled instructions plus label/symbol tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .instructions import Instruction


@dataclass
class Program:
    """An assembled kernel.

    ``pc`` values are instruction indices; the fetch stage converts them to
    byte addresses (``pc * 4``) for icache modelling.  ``symbols`` maps data
    symbol names to byte addresses in main memory.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    @property
    def entry(self) -> int:
        """Entry point (label ``start`` if present, else 0)."""
        return self.labels.get("start", 0)

    def disassemble(self) -> str:
        """Human-readable listing with labels."""
        by_pc: Dict[int, List[str]] = {}
        for name, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(name)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for name in by_pc.get(pc, []):
                lines.append(f"{name}:")
            lines.append(f"  {pc:4d}: {inst.text or inst.opcode.name.lower()}")
        return "\n".join(lines)
