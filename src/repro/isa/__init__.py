"""Mini AArch64-flavoured ISA: registers, instructions, assembler, golden model."""

from .assembler import AssemblerError, assemble
from .decoded import DecodedOp, DecodedProgram
from .encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from .func_sim import ArchState, FunctionalSimulator, run_functional
from .instructions import (
    AddrMode,
    Cond,
    ExecResult,
    Flags,
    Instruction,
    Opcode,
    evaluate,
)
from .program import Program
from .registers import D, Reg, RegClass, SP, X, from_flat, parse_reg

__all__ = [
    "AddrMode", "ArchState", "AssemblerError", "Cond", "D", "DecodedOp",
    "DecodedProgram", "EncodingError",
    "ExecResult", "Flags", "FunctionalSimulator", "Instruction", "Opcode",
    "Program", "Reg", "RegClass", "SP", "X", "assemble",
    "decode_instruction", "decode_program", "encode_instruction",
    "encode_program", "evaluate", "from_flat", "parse_reg", "run_functional",
]
