"""Instruction IR and execution semantics for the mini-ISA.

The ISA is a compact AArch64-flavoured RISC subset sufficient to express the
paper's near-memory kernels (gather/scatter/stride/stream/meabo/...):

* ALU: ``add sub and orr eor lsl lsr asr mul madd mov adr``
* Compare/branch: ``cmp`` (sets NZCV), ``b``, ``b.<cond>``, ``cbz``, ``cbnz``
* Memory: ``ldr``/``str`` with immediate-offset, register-offset
  (``[xn, xm, lsl #s]``) and post-index (``[xn], #imm``) addressing
* Floating point: ``fadd fsub fmul fmadd fmov`` and ``ldr/str`` on ``d`` regs
* ``nop`` and ``halt`` (ends the thread)

All memory accesses are 8-byte aligned 64-bit words; this keeps the
functional memory model exact while preserving the cache-line behaviour that
drives the paper's results (8 registers per 64-byte line, Section 5.3).

:func:`evaluate` implements the architectural semantics of one instruction,
given its already-read source values.  It is shared by the functional golden
model (:mod:`repro.isa.func_sim`) and by every cycle-level core model, so the
timing models can never diverge functionally from the ISA definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum, auto
from typing import Dict, Optional, Tuple

from .registers import Reg

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63


def to_signed(value: int) -> int:
    """Interpret an unsigned 64-bit value as signed."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into unsigned 64-bit."""
    return value & MASK64


class Opcode(Enum):
    """Instruction opcodes of the mini-ISA (see docs/isa.md)."""

    # ALU
    ADD = auto()
    SUB = auto()
    AND = auto()
    ORR = auto()
    EOR = auto()
    LSL = auto()
    LSR = auto()
    ASR = auto()
    MUL = auto()
    MADD = auto()
    MOV = auto()
    ADR = auto()
    CMP = auto()
    # memory
    LDR = auto()
    STR = auto()
    # floating point
    FADD = auto()
    FSUB = auto()
    FMUL = auto()
    FMADD = auto()
    FMOV = auto()
    # control
    B = auto()
    BCOND = auto()
    CBZ = auto()
    CBNZ = auto()
    NOP = auto()
    HALT = auto()


class Cond(IntEnum):
    """Branch conditions (signed compare semantics, ARM NZCV rules)."""

    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5


class AddrMode(Enum):
    """Load/store addressing modes."""

    OFF_IMM = auto()   # [xn, #imm]
    OFF_REG = auto()   # [xn, xm, lsl #shift]
    POST_IMM = auto()  # [xn], #imm  (writeback)


ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.ORR,
        Opcode.EOR,
        Opcode.LSL,
        Opcode.LSR,
        Opcode.ASR,
        Opcode.MUL,
        Opcode.MADD,
        Opcode.MOV,
        Opcode.ADR,
        Opcode.CMP,
    }
)
FP_OPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FMADD, Opcode.FMOV})
BRANCH_OPS = frozenset({Opcode.B, Opcode.BCOND, Opcode.CBZ, Opcode.CBNZ})
MEM_OPS = frozenset({Opcode.LDR, Opcode.STR})

#: Execute-stage latency (cycles) per opcode class; loads/stores get their
#: latency from the memory system instead.
EX_LATENCY: Dict[Opcode, int] = {
    Opcode.MUL: 3,
    Opcode.MADD: 3,
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FMADD: 5,
}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    ``srcs``/``dests`` are derived once at construction and cached; they are
    exactly the register sets the VRMU must have resident for the instruction
    to enter the pipeline backend (Section 5.1).
    """

    opcode: Opcode
    rd: Optional[Reg] = None
    rn: Optional[Reg] = None
    rm: Optional[Reg] = None
    ra: Optional[Reg] = None
    imm: Optional[float] = None
    shift: int = 0
    cond: Optional[Cond] = None
    mode: Optional[AddrMode] = None
    target: Optional[int] = None  # branch target (instruction index)
    label: Optional[str] = None   # unresolved label name (assembler use)
    text: str = ""
    srcs: Tuple[Reg, ...] = field(default=(), init=False)
    dests: Tuple[Reg, ...] = field(default=(), init=False)
    regs: Tuple[Reg, ...] = field(default=(), init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "srcs", self._compute_srcs())
        object.__setattr__(self, "dests", self._compute_dests())
        seen = set()
        allregs = []
        for r in self.srcs + self.dests:
            if r not in seen:
                seen.add(r)
                allregs.append(r)
        object.__setattr__(self, "regs", tuple(allregs))

    # -- register sets ----------------------------------------------------
    def _compute_srcs(self) -> Tuple[Reg, ...]:
        op = self.opcode
        out = []
        if op in (Opcode.MOV, Opcode.FMOV):
            if self.rn is not None:
                out.append(self.rn)
        elif op in (Opcode.CBZ, Opcode.CBNZ):
            out.append(self.rn)
        elif op == Opcode.LDR:
            out.append(self.rn)
            if self.mode == AddrMode.OFF_REG:
                out.append(self.rm)
        elif op == Opcode.STR:
            out.append(self.rd)  # value to store
            out.append(self.rn)
            if self.mode == AddrMode.OFF_REG:
                out.append(self.rm)
        elif op in (Opcode.ADR, Opcode.B, Opcode.NOP, Opcode.HALT, Opcode.BCOND):
            pass
        else:  # ALU / FP
            if self.rn is not None:
                out.append(self.rn)
            if self.rm is not None:
                out.append(self.rm)
            if self.ra is not None:
                out.append(self.ra)
        # dedupe, keep order
        seen = set()
        uniq = []
        for r in out:
            if r not in seen:
                seen.add(r)
                uniq.append(r)
        return tuple(uniq)

    def _compute_dests(self) -> Tuple[Reg, ...]:
        op = self.opcode
        out = []
        if op == Opcode.LDR:
            out.append(self.rd)
            if self.mode == AddrMode.POST_IMM:
                out.append(self.rn)
        elif op == Opcode.STR:
            if self.mode == AddrMode.POST_IMM:
                out.append(self.rn)
        elif op in (Opcode.CMP, Opcode.B, Opcode.BCOND, Opcode.CBZ, Opcode.CBNZ,
                    Opcode.NOP, Opcode.HALT):
            pass
        elif self.rd is not None:
            out.append(self.rd)
        return tuple(out)

    # -- classification ----------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.opcode == Opcode.LDR

    @property
    def is_store(self) -> bool:
        return self.opcode == Opcode.STR

    @property
    def is_mem(self) -> bool:
        return self.opcode in MEM_OPS

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPS

    @property
    def is_halt(self) -> bool:
        return self.opcode == Opcode.HALT

    @property
    def ex_latency(self) -> int:
        return EX_LATENCY.get(self.opcode, 1)

    @property
    def sets_flags(self) -> bool:
        return self.opcode == Opcode.CMP

    @property
    def reads_flags(self) -> bool:
        return self.opcode == Opcode.BCOND

    def __repr__(self) -> str:
        return self.text or self.opcode.name.lower()


@dataclass
class Flags:
    """ARM-style NZCV condition flags."""

    n: bool = False
    z: bool = True
    c: bool = True
    v: bool = False

    def copy(self) -> "Flags":
        return Flags(self.n, self.z, self.c, self.v)

    def evaluate(self, cond: Cond) -> bool:
        if cond == Cond.EQ:
            return self.z
        if cond == Cond.NE:
            return not self.z
        if cond == Cond.LT:
            return self.n != self.v
        if cond == Cond.LE:
            return self.z or (self.n != self.v)
        if cond == Cond.GT:
            return (not self.z) and (self.n == self.v)
        if cond == Cond.GE:
            return self.n == self.v
        raise ValueError(f"unknown condition {cond}")  # pragma: no cover


@dataclass
class ExecResult:
    """Outcome of executing one instruction (excluding memory data).

    ``writes`` maps destination registers to values known at execute time;
    a load's destination is *not* in ``writes`` (memory supplies it later).
    """

    writes: Dict[Reg, float] = field(default_factory=dict)
    addr: Optional[int] = None
    store_value: Optional[float] = None
    taken: bool = False
    target: Optional[int] = None
    new_flags: Optional[Flags] = None
    halt: bool = False


def _alu(op: Opcode, a: int, b: int, c: int = 0) -> int:
    if op == Opcode.ADD:
        return (a + b) & MASK64
    if op == Opcode.SUB:
        return (a - b) & MASK64
    if op == Opcode.AND:
        return a & b
    if op == Opcode.ORR:
        return a | b
    if op == Opcode.EOR:
        return a ^ b
    if op == Opcode.LSL:
        return (a << (b & 63)) & MASK64
    if op == Opcode.LSR:
        return (a & MASK64) >> (b & 63)
    if op == Opcode.ASR:
        return to_unsigned(to_signed(a) >> (b & 63))
    if op == Opcode.MUL:
        return (a * b) & MASK64
    if op == Opcode.MADD:
        return (a * b + c) & MASK64
    raise ValueError(f"not an ALU op: {op}")  # pragma: no cover


def compute_address(inst: Instruction, base: int, offset_reg: int = 0) -> Tuple[int, Optional[int]]:
    """Return ``(effective_address, base_writeback_value_or_None)``."""
    if inst.mode == AddrMode.OFF_IMM:
        return (base + int(inst.imm or 0)) & MASK64, None
    if inst.mode == AddrMode.OFF_REG:
        return (base + ((offset_reg << inst.shift) & MASK64)) & MASK64, None
    if inst.mode == AddrMode.POST_IMM:
        return base & MASK64, (base + int(inst.imm or 0)) & MASK64
    raise ValueError(f"instruction {inst} has no addressing mode")


def evaluate(inst: Instruction, srcvals: Dict[Reg, float], flags: Flags, pc: int) -> ExecResult:
    """Execute ``inst`` architecturally given its source-operand values.

    ``srcvals`` must contain every register in ``inst.srcs``.  Integer
    registers hold unsigned 64-bit Python ints; FP registers hold floats.
    """
    op = inst.opcode
    res = ExecResult()

    if op == Opcode.NOP:
        return res
    if op == Opcode.HALT:
        res.halt = True
        return res

    if op == Opcode.MOV:
        res.writes[inst.rd] = int(srcvals[inst.rn]) & MASK64 if inst.rn is not None else int(inst.imm) & MASK64
        return res
    if op == Opcode.FMOV:
        res.writes[inst.rd] = float(srcvals[inst.rn]) if inst.rn is not None else float(inst.imm)
        return res
    if op == Opcode.ADR:
        res.writes[inst.rd] = int(inst.imm) & MASK64
        return res

    if op == Opcode.CMP:
        a = int(srcvals[inst.rn])
        b = int(srcvals[inst.rm]) if inst.rm is not None else int(inst.imm) & MASK64
        diff = (a - b) & MASK64
        f = Flags(
            n=bool(diff & SIGN64),
            z=diff == 0,
            c=(a & MASK64) >= (b & MASK64),
            v=(to_signed(a) - to_signed(b)) != to_signed(diff),
        )
        res.new_flags = f
        return res

    if op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR, Opcode.EOR,
              Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.MUL):
        a = int(srcvals[inst.rn])
        b = int(srcvals[inst.rm]) if inst.rm is not None else int(inst.imm) & MASK64
        res.writes[inst.rd] = _alu(op, a, b)
        return res
    if op == Opcode.MADD:
        res.writes[inst.rd] = _alu(op, int(srcvals[inst.rn]), int(srcvals[inst.rm]),
                                   int(srcvals[inst.ra]))
        return res

    if op == Opcode.FADD:
        res.writes[inst.rd] = float(srcvals[inst.rn]) + float(srcvals[inst.rm])
        return res
    if op == Opcode.FSUB:
        res.writes[inst.rd] = float(srcvals[inst.rn]) - float(srcvals[inst.rm])
        return res
    if op == Opcode.FMUL:
        res.writes[inst.rd] = float(srcvals[inst.rn]) * float(srcvals[inst.rm])
        return res
    if op == Opcode.FMADD:
        res.writes[inst.rd] = (float(srcvals[inst.rn]) * float(srcvals[inst.rm])
                               + float(srcvals[inst.ra]))
        return res

    if op == Opcode.B:
        res.taken = True
        res.target = inst.target
        return res
    if op == Opcode.BCOND:
        if flags.evaluate(inst.cond):
            res.taken = True
            res.target = inst.target
        return res
    if op in (Opcode.CBZ, Opcode.CBNZ):
        zero = int(srcvals[inst.rn]) & MASK64 == 0
        if (op == Opcode.CBZ) == zero:
            res.taken = True
            res.target = inst.target
        return res

    if op in (Opcode.LDR, Opcode.STR):
        base = int(srcvals[inst.rn])
        off = int(srcvals[inst.rm]) if (inst.mode == AddrMode.OFF_REG and inst.rm) else 0
        addr, writeback = compute_address(inst, base, off)
        res.addr = addr
        if writeback is not None:
            res.writes[inst.rn] = writeback
        if op == Opcode.STR:
            res.store_value = srcvals[inst.rd]
        return res

    raise ValueError(f"unimplemented opcode {op}")  # pragma: no cover
