"""Programmatic kernel builder: construct Programs without assembly text.

A fluent alternative front end to :func:`repro.isa.assembler.assemble` for
generated code (tests, sweeps over unrolling factors, the software
save/restore sequences).  Labels are forward-referenced by name and
resolved at :meth:`KernelBuilder.build`.

Example::

    b = KernelBuilder()
    b.mov(X(3), 0)
    b.label("loop")
    b.ldr(X(8), base=X(5), index=X(3), shift=3)
    b.add(X(3), X(3), 1)
    b.cmp(X(3), X(4))
    b.blt("loop")
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .instructions import AddrMode, Cond, Instruction, Opcode
from .program import Program
from .registers import Reg

Operand = Union[Reg, int]


class BuilderError(ValueError):
    """Malformed builder usage (unknown label, bad operand mix)."""


class KernelBuilder:
    """Accumulates instructions; resolves labels at build time."""

    def __init__(self, name: str = "built") -> None:
        self.name = name
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[int] = []  # pcs whose target is a label name

    # -- structure ------------------------------------------------------------
    def label(self, name: str) -> "KernelBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise BuilderError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return self

    def emit(self, inst: Instruction) -> "KernelBuilder":
        """Append a pre-constructed instruction."""
        self._insts.append(inst)
        if inst.label is not None and inst.target is None:
            self._fixups.append(len(self._insts) - 1)
        return self

    # -- ALU -----------------------------------------------------------------
    def _alu3(self, op: Opcode, rd: Reg, rn: Reg, rhs: Operand) -> "KernelBuilder":
        if isinstance(rhs, Reg):
            return self.emit(Instruction(op, rd=rd, rn=rn, rm=rhs,
                                         text=f"{op.name.lower()} {rd}, {rn}, {rhs}"))
        return self.emit(Instruction(op, rd=rd, rn=rn, imm=int(rhs),
                                     text=f"{op.name.lower()} {rd}, {rn}, #{rhs}"))

    def add(self, rd, rn, rhs):
        """``rd = rn + rhs`` (register or immediate)."""
        return self._alu3(Opcode.ADD, rd, rn, rhs)

    def sub(self, rd, rn, rhs):
        """``rd = rn - rhs``."""
        return self._alu3(Opcode.SUB, rd, rn, rhs)

    def and_(self, rd, rn, rhs):
        """``rd = rn & rhs``."""
        return self._alu3(Opcode.AND, rd, rn, rhs)

    def lsl(self, rd, rn, rhs):
        """``rd = rn << rhs``."""
        return self._alu3(Opcode.LSL, rd, rn, rhs)

    def mul(self, rd, rn, rhs):
        """``rd = rn * rhs`` (register only)."""
        if not isinstance(rhs, Reg):
            raise BuilderError("mul needs a register rhs")
        return self._alu3(Opcode.MUL, rd, rn, rhs)

    def madd(self, rd, rn, rm, ra):
        """``rd = rn*rm + ra``."""
        return self.emit(Instruction(Opcode.MADD, rd=rd, rn=rn, rm=rm, ra=ra,
                                     text=f"madd {rd}, {rn}, {rm}, {ra}"))

    def mov(self, rd, value: Operand):
        """``rd = value`` (register or immediate)."""
        if isinstance(value, Reg):
            return self.emit(Instruction(Opcode.MOV, rd=rd, rn=value,
                                         text=f"mov {rd}, {value}"))
        return self.emit(Instruction(Opcode.MOV, rd=rd, imm=int(value),
                                     text=f"mov {rd}, #{value}"))

    def adr(self, rd, address: int):
        """``rd = address`` (absolute)."""
        return self.emit(Instruction(Opcode.ADR, rd=rd, imm=int(address),
                                     text=f"adr {rd}, {address:#x}"))

    def cmp(self, rn, rhs: Operand):
        """Compare and set flags."""
        if isinstance(rhs, Reg):
            return self.emit(Instruction(Opcode.CMP, rn=rn, rm=rhs,
                                         text=f"cmp {rn}, {rhs}"))
        return self.emit(Instruction(Opcode.CMP, rn=rn, imm=int(rhs),
                                     text=f"cmp {rn}, #{rhs}"))

    # -- memory ---------------------------------------------------------------
    def ldr(self, rt, base, offset: int = 0, index: Optional[Reg] = None,
            shift: int = 0, post: Optional[int] = None):
        """Load; exactly one of offset / index / post addressing."""
        return self._mem(Opcode.LDR, rt, base, offset, index, shift, post)

    def str_(self, rt, base, offset: int = 0, index: Optional[Reg] = None,
             shift: int = 0, post: Optional[int] = None):
        """Store (named ``str_`` to avoid shadowing the builtin)."""
        return self._mem(Opcode.STR, rt, base, offset, index, shift, post)

    def _mem(self, op, rt, base, offset, index, shift, post):
        if post is not None:
            if index is not None or offset:
                raise BuilderError("post-index excludes other addressing")
            return self.emit(Instruction(op, rd=rt, rn=base, imm=post,
                                         mode=AddrMode.POST_IMM,
                                         text=f"{op.name.lower()} {rt}, [{base}], #{post}"))
        if index is not None:
            return self.emit(Instruction(op, rd=rt, rn=base, rm=index,
                                         shift=shift, mode=AddrMode.OFF_REG,
                                         text=f"{op.name.lower()} {rt}, [{base}, {index}, lsl #{shift}]"))
        return self.emit(Instruction(op, rd=rt, rn=base, imm=offset,
                                     mode=AddrMode.OFF_IMM,
                                     text=f"{op.name.lower()} {rt}, [{base}, #{offset}]"))

    # -- control --------------------------------------------------------------
    def b(self, target: str):
        """Unconditional branch to a label."""
        return self.emit(Instruction(Opcode.B, label=target, text=f"b {target}"))

    def bcond(self, cond: Cond, target: str):
        """Conditional branch to a label."""
        return self.emit(Instruction(Opcode.BCOND, cond=cond, label=target,
                                     text=f"b.{cond.name.lower()} {target}"))

    def blt(self, target: str):
        """``b.lt target``."""
        return self.bcond(Cond.LT, target)

    def bge(self, target: str):
        """``b.ge target``."""
        return self.bcond(Cond.GE, target)

    def beq(self, target: str):
        """``b.eq target``."""
        return self.bcond(Cond.EQ, target)

    def cbz(self, rn, target: str):
        """Branch to ``target`` when ``rn == 0``."""
        return self.emit(Instruction(Opcode.CBZ, rn=rn, label=target,
                                     text=f"cbz {rn}, {target}"))

    def cbnz(self, rn, target: str):
        """Branch to ``target`` when ``rn != 0``."""
        return self.emit(Instruction(Opcode.CBNZ, rn=rn, label=target,
                                     text=f"cbnz {rn}, {target}"))

    def nop(self):
        """No-operation."""
        return self.emit(Instruction(Opcode.NOP, text="nop"))

    def halt(self):
        """End the thread."""
        return self.emit(Instruction(Opcode.HALT, text="halt"))

    # -- finalize -------------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        insts: List[Instruction] = []
        for pc, inst in enumerate(self._insts):
            if inst.label is not None and inst.target is None:
                if inst.label not in self._labels:
                    raise BuilderError(f"undefined label {inst.label!r}")
                inst = Instruction(
                    inst.opcode, rd=inst.rd, rn=inst.rn, rm=inst.rm,
                    ra=inst.ra, imm=inst.imm, shift=inst.shift,
                    cond=inst.cond, mode=inst.mode,
                    target=self._labels[inst.label], label=inst.label,
                    text=inst.text)
            insts.append(inst)
        return Program(instructions=insts, labels=dict(self._labels),
                       name=self.name)
