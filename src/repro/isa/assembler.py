"""Two-pass text assembler for the mini-ISA.

Syntax follows AArch64 conventions closely enough that the paper's kernels
read naturally::

    start:
        mov   x5, #0
        adr   x2, idx            ; address of data symbol 'idx'
    loop:
        ldr   x6, [x2, x5, lsl #3]
        add   x5, x5, #1
        cmp   x5, x4
        b.lt  loop
        halt

Comments start with ``;``, ``//`` or ``#`` at start of token.  Data symbols
referenced via ``adr`` are resolved against the ``symbols`` mapping supplied
by the caller (the workload generators place their arrays and pass the
addresses in).  ``ldrsw`` is accepted as an alias of ``ldr`` (all memory
accesses are 64-bit words in this model).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import AddrMode, Cond, Instruction, Opcode
from .program import Program
from .registers import Reg, parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_RE = re.compile(
    r"^\[\s*(?P<base>\w+)\s*"
    r"(?:,\s*(?:#(?P<imm>-?\w+)|(?P<idx>\w+)\s*(?:,\s*lsl\s*#(?P<shift>\d+))?)\s*)?"
    r"\]\s*(?:,\s*#(?P<post>-?\w+))?$"
)

_COND_MAP = {c.name.lower(): c for c in Cond}

_ALU3 = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "and": Opcode.AND,
    "orr": Opcode.ORR,
    "eor": Opcode.EOR,
    "lsl": Opcode.LSL,
    "lsr": Opcode.LSR,
    "asr": Opcode.ASR,
    "mul": Opcode.MUL,
}
_FP3 = {"fadd": Opcode.FADD, "fsub": Opcode.FSUB, "fmul": Opcode.FMUL}


class AssemblerError(ValueError):
    """Raised for any syntax or resolution error, with line context."""


def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_imm(token: str, symbols: Dict[str, int], lineno: int) -> int:
    token = token.strip().lstrip("#")
    try:
        return int(token, 0)
    except ValueError:
        if token in symbols:
            return symbols[token]
        raise AssemblerError(f"line {lineno}: bad immediate or unknown symbol {token!r}")


def _parse_fimm(token: str, lineno: int) -> float:
    token = token.strip().lstrip("#")
    try:
        return float(token)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad float immediate {token!r}")


def _split_operands(rest: str) -> List[str]:
    """Split operands on commas that are not inside brackets."""
    parts: List[str] = []
    depth = 0
    cur = ""
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur.strip())
            cur = ""
        else:
            cur += ch
    if cur.strip():
        parts.append(cur.strip())
    return parts


def _parse_mem_operand(
    token: str, symbols: Dict[str, int], lineno: int
) -> Tuple[Reg, Optional[Reg], Optional[int], int, AddrMode]:
    m = _MEM_RE.match(token)
    if not m:
        raise AssemblerError(f"line {lineno}: bad memory operand {token!r}")
    base = parse_reg(m.group("base"))
    if m.group("post") is not None:
        if m.group("imm") or m.group("idx"):
            raise AssemblerError(f"line {lineno}: mixed addressing in {token!r}")
        return base, None, _parse_imm(m.group("post"), symbols, lineno), 0, AddrMode.POST_IMM
    if m.group("idx") is not None:
        shift = int(m.group("shift") or 0)
        return base, parse_reg(m.group("idx")), None, shift, AddrMode.OFF_REG
    imm = _parse_imm(m.group("imm"), symbols, lineno) if m.group("imm") else 0
    return base, None, imm, 0, AddrMode.OFF_IMM


def _assemble_line(
    mnemonic: str, operands: List[str], symbols: Dict[str, int], lineno: int, text: str
) -> Instruction:
    op = mnemonic.lower()

    def need(n: int) -> None:
        if len(operands) != n:
            raise AssemblerError(
                f"line {lineno}: {op} expects {n} operands, got {len(operands)}"
            )

    if op in ("nop", "halt"):
        need(0)
        return Instruction(Opcode.NOP if op == "nop" else Opcode.HALT, text=text)

    if op in ("ldr", "str", "ldrsw"):
        # post-index syntax "[xn], #imm" splits at the top-level comma; rejoin
        if len(operands) == 3 and operands[1].endswith("]") and operands[2].startswith("#"):
            operands = [operands[0], f"{operands[1]}, {operands[2]}"]
        need(2)
        rd = parse_reg(operands[0])
        base, idx, imm, shift, mode = _parse_mem_operand(operands[1], symbols, lineno)
        return Instruction(
            Opcode.LDR if op in ("ldr", "ldrsw") else Opcode.STR,
            rd=rd, rn=base, rm=idx, imm=imm, shift=shift, mode=mode, text=text,
        )

    if op in ("mov", "movz"):
        need(2)
        rd = parse_reg(operands[0])
        if operands[1].startswith("#") or operands[1].lstrip("-").isdigit():
            return Instruction(Opcode.MOV, rd=rd, imm=_parse_imm(operands[1], symbols, lineno),
                               text=text)
        return Instruction(Opcode.MOV, rd=rd, rn=parse_reg(operands[1]), text=text)

    if op == "fmov":
        need(2)
        rd = parse_reg(operands[0])
        if operands[1].startswith("#"):
            return Instruction(Opcode.FMOV, rd=rd, imm=_parse_fimm(operands[1], lineno), text=text)
        return Instruction(Opcode.FMOV, rd=rd, rn=parse_reg(operands[1]), text=text)

    if op == "adr":
        need(2)
        rd = parse_reg(operands[0])
        sym = operands[1].lstrip("=")
        return Instruction(Opcode.ADR, rd=rd, imm=_parse_imm(sym, symbols, lineno), text=text)

    if op == "cmp":
        need(2)
        rn = parse_reg(operands[0])
        if operands[1].startswith("#"):
            return Instruction(Opcode.CMP, rn=rn, imm=_parse_imm(operands[1], symbols, lineno),
                               text=text)
        return Instruction(Opcode.CMP, rn=rn, rm=parse_reg(operands[1]), text=text)

    if op in _ALU3:
        need(3)
        rd, rn = parse_reg(operands[0]), parse_reg(operands[1])
        if operands[2].startswith("#") or operands[2].lstrip("-").isdigit():
            return Instruction(_ALU3[op], rd=rd, rn=rn,
                               imm=_parse_imm(operands[2], symbols, lineno), text=text)
        return Instruction(_ALU3[op], rd=rd, rn=rn, rm=parse_reg(operands[2]), text=text)

    if op in _FP3:
        need(3)
        return Instruction(_FP3[op], rd=parse_reg(operands[0]), rn=parse_reg(operands[1]),
                           rm=parse_reg(operands[2]), text=text)

    if op in ("madd", "fmadd"):
        need(4)
        return Instruction(
            Opcode.MADD if op == "madd" else Opcode.FMADD,
            rd=parse_reg(operands[0]), rn=parse_reg(operands[1]),
            rm=parse_reg(operands[2]), ra=parse_reg(operands[3]), text=text,
        )

    if op == "b":
        need(1)
        return Instruction(Opcode.B, label=operands[0], text=text)

    if op.startswith("b.") and op[2:] in _COND_MAP:
        need(1)
        return Instruction(Opcode.BCOND, cond=_COND_MAP[op[2:]], label=operands[0], text=text)

    if op in ("cbz", "cbnz"):
        need(2)
        return Instruction(Opcode.CBZ if op == "cbz" else Opcode.CBNZ,
                           rn=parse_reg(operands[0]), label=operands[1], text=text)

    raise AssemblerError(f"line {lineno}: unknown mnemonic {op!r}")


def assemble(source: str, symbols: Optional[Dict[str, int]] = None, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`Program`.

    ``symbols`` maps data symbol names to byte addresses, used to resolve
    ``adr`` operands and symbolic immediates.
    """
    symbols = dict(symbols or {})
    labels: Dict[str, int] = {}
    pending: List[Tuple[str, List[str], int, str]] = []

    # pass 1: collect labels + tokenized instructions
    pc = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        while True:
            m = _LABEL_RE.match(line.split(None, 1)[0] if " " in line else line)
            if m and (line == m.group(0) or line.startswith(m.group(0))):
                if m.group(1) in labels:
                    raise AssemblerError(f"line {lineno}: duplicate label {m.group(1)!r}")
                labels[m.group(1)] = pc
                line = line[len(m.group(0)):].strip()
                if not line:
                    break
            else:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        pending.append((mnemonic, operands, lineno, line))
        pc += 1

    # pass 2: assemble with branch target resolution
    instructions: List[Instruction] = []
    for mnemonic, operands, lineno, text in pending:
        inst = _assemble_line(mnemonic, operands, symbols, lineno, text)
        if inst.label is not None:
            if inst.label not in labels:
                raise AssemblerError(f"line {lineno}: undefined label {inst.label!r}")
            inst = Instruction(
                inst.opcode, rd=inst.rd, rn=inst.rn, rm=inst.rm, ra=inst.ra,
                imm=inst.imm, shift=inst.shift, cond=inst.cond, mode=inst.mode,
                target=labels[inst.label], label=inst.label, text=text,
            )
        instructions.append(inst)

    return Program(instructions=instructions, labels=labels, symbols=symbols, name=name)
