"""Binary instruction encoding: 32-bit fixed-width words.

The timing models fetch by ``pc * 4`` byte addresses; this module provides
the actual encodings behind those addresses so programs can be serialized
(e.g. to load into a different simulator or examine densities).  The format
is AArch64-*flavoured*, not AArch64-compatible: a clean fixed-field layout

    [31:26] opcode   (6 bits)
    [25:20] rd       (6-bit flat register index, 0x3F = none)
    [19:14] rn
    [13:8]  rm
    [7:2]   ra / cond / shift  (per-opcode)
    [1:0]   mode     (addressing / immediate-flag)

Immediates and branch targets that do not fit the word are placed in a
trailing literal word (marked by mode=3), giving a simple variable-length
(1-2 word) encoding.  :func:`encode_program` / :func:`decode_program`
round-trip losslessly for every construct the assembler can produce, which
the property tests verify.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from .instructions import AddrMode, Cond, Instruction, Opcode
from .program import Program
from .registers import Reg, from_flat

_OPCODES = {op: i for i, op in enumerate(Opcode)}
_OPCODES_REV = {i: op for op, i in _OPCODES.items()}
_MODES = {None: 0, AddrMode.OFF_IMM: 1, AddrMode.OFF_REG: 2, AddrMode.POST_IMM: 3}
_MODES_REV = {v: k for k, v in _MODES.items()}

NO_REG = 0x3F
LITERAL_FLAG = 1 << 1  # in the low field pair of word 0


class EncodingError(ValueError):
    """Instruction cannot be encoded (field overflow)."""


def _reg_field(reg: Optional[Reg]) -> int:
    return reg.flat if reg is not None else NO_REG


def _field_reg(value: int) -> Optional[Reg]:
    return None if value == NO_REG else from_flat(value)


def _needs_literal(inst: Instruction) -> bool:
    if inst.imm is not None:
        if isinstance(inst.imm, float) and not float(inst.imm).is_integer():
            return True
        v = int(inst.imm)
        if not (0 <= v < 64):
            return True
    if inst.target is not None and not (0 <= inst.target < 64):
        return True
    return False


def encode_instruction(inst: Instruction) -> List[int]:
    """Encode one instruction into one or two 32-bit words."""
    op = _OPCODES[inst.opcode]
    aux = 0
    if inst.cond is not None:
        aux = int(inst.cond)
    elif inst.ra is not None:
        aux = inst.ra.flat
    elif inst.shift:
        aux = inst.shift
    if aux >= 64:
        raise EncodingError(f"aux field overflow in {inst}")

    literal = _needs_literal(inst)
    mode_bits = _MODES[inst.mode]
    word = (op << 26) | (_reg_field(inst.rd) << 20) | \
           (_reg_field(inst.rn) << 14) | (_reg_field(inst.rm) << 8) | \
           (aux << 2) | mode_bits
    words = [word]

    if literal:
        if inst.imm is not None and isinstance(inst.imm, float) \
                and not float(inst.imm).is_integer():
            lit = struct.unpack("<I", struct.pack("<f", float(inst.imm)))[0]
            words[0] |= 1 << 31  # FP-literal marker requires opcode < 32
            if op >= 32:
                raise EncodingError("fp literal with high opcode")
        elif inst.imm is not None:
            lit = int(inst.imm) & 0xFFFFFFFF
        else:
            lit = int(inst.target) & 0xFFFFFFFF
        words.append(lit)
    else:
        # small immediate or target packed into a reuse of the rm field
        small = None
        if inst.imm is not None:
            small = int(inst.imm)
        elif inst.target is not None:
            small = int(inst.target)
        if small is not None:
            if inst.rm is None:
                words[0] = (words[0] & ~(0x3F << 8)) | ((small & 0x3F) << 8)
                if inst.mode is None:
                    # non-memory op: mark "rm field holds an immediate" so
                    # `add x0,x0,x1` and `add x0,x0,#1` stay distinguishable
                    words[0] |= 0x1
            else:
                # both rm and a small imm — force literal form instead
                words.append(small & 0xFFFFFFFF)
    return words


def encode_program(program: Program) -> bytes:
    """Serialize a program to little-endian 32-bit words.

    The stream starts with a word count, then per-instruction 1-bit
    literal-follows flags are recoverable from the mode/imm structure; we
    keep it simple by prefixing each instruction with its word count (1 or
    2) packed one byte each.
    """
    chunks: List[bytes] = []
    lengths = bytearray()
    for inst in program.instructions:
        words = encode_instruction(inst)
        lengths.append(len(words))
        for w in words:
            chunks.append(struct.pack("<I", w & 0xFFFFFFFF))
    header = struct.pack("<I", len(program.instructions))
    return header + bytes(lengths) + b"".join(chunks)


def decode_instruction(words: List[int], opcode_hint=None) -> Instruction:
    """Decode one (1- or 2-word) instruction."""
    w = words[0]
    fp_literal = bool(w >> 31) and len(words) > 1
    op = _OPCODES_REV[(w >> 26) & 0x1F if fp_literal else (w >> 26) & 0x3F]
    rd = _field_reg((w >> 20) & 0x3F)
    rn = _field_reg((w >> 14) & 0x3F)
    rm_field = (w >> 8) & 0x3F
    aux = (w >> 2) & 0x3F
    is_mem = op in (Opcode.LDR, Opcode.STR)
    imm_in_rm = bool(w & 0x1) and not is_mem
    mode = _MODES_REV[w & 0x3] if is_mem else None

    cond = Cond(aux) if op == Opcode.BCOND else None
    ra = from_flat(aux) if op in (Opcode.MADD, Opcode.FMADD) else None
    shift = aux if is_mem and mode == AddrMode.OFF_REG else 0

    imm = None
    target = None
    rm = None
    is_branch = op in (Opcode.B, Opcode.BCOND, Opcode.CBZ, Opcode.CBNZ)
    if len(words) > 1:
        lit = words[1]
        if fp_literal:
            imm = struct.unpack("<f", struct.pack("<I", lit))[0]
        elif is_branch:
            target = lit
        else:
            imm = lit if lit < (1 << 31) else lit - (1 << 32)
    else:
        if is_branch:
            target = rm_field
        elif is_mem:
            if mode == AddrMode.OFF_REG:
                rm = _field_reg(rm_field)
            else:
                imm = rm_field
        elif imm_in_rm:
            imm = rm_field
        elif rm_field != NO_REG:
            rm = _field_reg(rm_field)

    # disambiguate reg-vs-imm ALU forms: the assembler always sets exactly
    # one of rm/imm; a packed small immediate reuses the rm field, which is
    # only distinguishable because registers are < 64 too.  We therefore
    # re-encode candidates and compare (cheap, and exact).
    candidates = []
    base = dict(rd=rd, rn=rn, ra=ra, cond=cond, mode=mode, shift=shift,
                target=target)
    if rm is not None or imm is not None:
        candidates.append(Instruction(op, rm=rm, imm=imm, **base))
    if len(words) == 1 and rm_field != NO_REG:
        candidates.append(Instruction(op, rm=_field_reg(rm_field), **base))
        candidates.append(Instruction(op, imm=rm_field, **base))
    candidates.append(Instruction(op, **base))
    for cand in candidates:
        try:
            if encode_instruction(cand) == words:
                return cand
        except (EncodingError, KeyError, ValueError):
            continue
    raise EncodingError(f"undecodable words {words!r}")


def decode_program(blob: bytes, name: str = "decoded") -> Program:
    """Inverse of :func:`encode_program`."""
    (count,) = struct.unpack_from("<I", blob, 0)
    lengths = blob[4:4 + count]
    offset = 4 + count
    instructions = []
    for length in lengths:
        words = [struct.unpack_from("<I", blob, offset + 4 * i)[0]
                 for i in range(length)]
        offset += 4 * length
        instructions.append(decode_instruction(words))
    return Program(instructions=instructions, name=name)
