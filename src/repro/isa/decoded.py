"""Pre-decoded instruction metadata (the engine's static decode pass).

Everything the timeline engine needs per committed instruction that is a
*static* property of the instruction — operand register tuples, flag
read/write behaviour, memory/branch classification, execute latency, and
the icache line the instruction's fetch touches — is computed once per
:class:`~repro.isa.program.Program` and packed into a
:class:`DecodedProgram` of ``__slots__``-only :class:`DecodedOp` records.

Before this pass existed, ``TimelineCore._process_instruction`` re-derived
each of these through ``Instruction`` properties on every commit (an
``EX_LATENCY`` dict probe, several ``Opcode`` enum compares, and a handful
of descriptor lookups per instruction).  Pre-decoding moves that work to
core construction time, which is what makes the uninstrumented hot loop's
compiled fast path (see :mod:`repro.core.instrument`) cheap.

Programs are immutable after assembly (the compiler passes build *new*
``Program`` objects rather than editing one in place), so the decode result
is cached on the program object itself, keyed by the icache line size it
was decoded for.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .instructions import Instruction
from .program import Program
from .registers import Reg, RegClass

__all__ = ["DecodedOp", "DecodedProgram"]

#: instruction word size in bytes (``pc * 4`` is the fetch byte address)
INST_BYTES = 4

_DECODE_CACHE_ATTR = "_decoded_programs"


class DecodedOp:
    """Static per-instruction metadata, flattened for the hot loop.

    Pure data — every field mirrors an :class:`Instruction` property but is
    materialized once so the engine reads plain slots instead of calling
    descriptors per commit.
    """

    __slots__ = ("inst", "pc", "srcs", "src_reads", "dests", "reads_flags",
                 "sets_flags", "is_load", "is_store", "is_branch", "is_halt",
                 "ex_latency", "addr", "line", "rd", "has_regs", "regs",
                 "is_mem", "kill_flats", "last_use_flats", "dead_dest_flats")

    def __init__(self, pc: int, inst: Instruction, line_bytes: int) -> None:
        self.inst = inst
        self.pc = pc
        self.srcs: Tuple[Reg, ...] = inst.srcs
        #: ``(reg, is_int_class, index)`` triples so the engine reads the
        #: per-thread register lists directly without per-access enum tests
        self.src_reads: Tuple[Tuple[Reg, bool, int], ...] = tuple(
            (r, r.rclass is RegClass.X, r.index) for r in inst.srcs)
        self.dests: Tuple[Reg, ...] = inst.dests
        self.reads_flags: bool = inst.reads_flags
        self.sets_flags: bool = inst.sets_flags
        self.is_load: bool = inst.is_load
        self.is_store: bool = inst.is_store
        self.is_branch: bool = inst.is_branch
        self.is_halt: bool = inst.is_halt
        self.ex_latency: int = inst.ex_latency
        self.addr: int = pc * INST_BYTES
        #: icache line index of the fetch (the engine's line-crossing check)
        self.line: int = self.addr // line_bytes
        self.rd: Optional[Reg] = inst.rd
        self.has_regs: bool = bool(inst.regs)
        #: mirrored so a DecodedOp duck-types as an Instruction for the
        #: VRMU access/flush paths (which read only ``regs``/``dests``)
        self.regs: Tuple[Reg, ...] = inst.regs
        self.is_mem: bool = inst.is_mem
        #: static liveness hints, ``None`` until
        #: :func:`repro.analysis.dataflow.annotate` fills them; tuples of
        #: flat register indices afterwards.  Strictly inert: only the
        #: dead-hint replacement policies ever read them.
        self.kill_flats: Optional[Tuple[int, ...]] = None
        self.last_use_flats: Optional[Tuple[int, ...]] = None
        self.dead_dest_flats: Optional[Tuple[int, ...]] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DecodedOp {self.pc}: {self.inst!r}>"


class DecodedProgram:
    """A :class:`Program` plus its packed per-pc :class:`DecodedOp` list.

    Indexing mirrors ``Program`` (``dprog[pc]`` is the decoded op at that
    instruction index).  Obtain instances through :meth:`of`, which caches
    the decode on the program object per icache line size — every core over
    the same program shares one decode.
    """

    __slots__ = ("program", "line_bytes", "ops", "liveness", "compiled")

    def __init__(self, program: Program, line_bytes: int = 64) -> None:
        self.program = program
        self.line_bytes = line_bytes
        self.ops: List[DecodedOp] = [
            DecodedOp(pc, inst, line_bytes)
            for pc, inst in enumerate(program.instructions)]
        #: cached :class:`~repro.analysis.dataflow.LivenessResult`, filled
        #: lazily by :func:`repro.analysis.dataflow.annotate`
        self.liveness = None
        #: threaded-code closure tables keyed by
        #: :class:`~repro.isa.compiled.EngineVariant`; filled lazily by
        #: :func:`repro.isa.compiled.compile_program`.  Living on the
        #: decode (itself keyed by (program, line size)) makes the full
        #: compile key (program, line size, variant) — closures can never
        #: leak across combinations.
        self.compiled = {}

    @classmethod
    def of(cls, program: Program, line_bytes: int = 64) -> "DecodedProgram":
        """Cached decode of ``program`` for a given icache line size."""
        cache = getattr(program, _DECODE_CACHE_ATTR, None)
        if cache is None:
            cache = {}
            setattr(program, _DECODE_CACHE_ATTR, cache)
        dprog = cache.get(line_bytes)
        if dprog is None or len(dprog.ops) != len(program.instructions):
            dprog = cls(program, line_bytes)
            cache[line_bytes] = dprog
        return dprog

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, pc: int) -> DecodedOp:
        return self.ops[pc]
