"""Functional (non-timed) golden-model simulator.

Runs a :class:`~repro.isa.program.Program` to completion with exact
architectural semantics and no timing.  Every cycle-level core model in
:mod:`repro.core` is validated against this golden model in the integration
tests: same program + same initial memory must produce identical final
register and memory state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..memory.main_memory import MainMemory
from .instructions import Flags, Instruction, Opcode, evaluate
from .program import Program
from .registers import NUM_FP_REGS, NUM_INT_REGS, D, Reg, RegClass, X


@dataclass
class ArchState:
    """Architectural state of one thread: registers, flags, pc."""

    pc: int = 0
    xregs: list = field(default_factory=lambda: [0] * NUM_INT_REGS)
    dregs: list = field(default_factory=lambda: [0.0] * NUM_FP_REGS)
    flags: Flags = field(default_factory=Flags)
    halted: bool = False

    def read(self, reg: Reg):
        if reg.rclass == RegClass.X:
            return self.xregs[reg.index]
        return self.dregs[reg.index]

    def write(self, reg: Reg, value) -> None:
        if reg.rclass == RegClass.X:
            self.xregs[reg.index] = int(value) & ((1 << 64) - 1)
        else:
            self.dregs[reg.index] = float(value)

    def snapshot(self) -> Dict[str, object]:
        """Register dump keyed by register name (for test comparisons)."""
        out: Dict[str, object] = {}
        for i, v in enumerate(self.xregs):
            out[X(i).name] = v
        for i, v in enumerate(self.dregs):
            out[D(i).name] = v
        return out


class FunctionalSimulator:
    """Executes a program instruction-at-a-time with no timing model."""

    def __init__(self, program: Program, memory: Optional[MainMemory] = None,
                 max_instructions: int = 50_000_000) -> None:
        self.program = program
        self.memory = memory if memory is not None else MainMemory()
        self.state = ArchState(pc=program.entry)
        self.max_instructions = max_instructions
        self.instructions_executed = 0

    def step(self) -> bool:
        """Execute one instruction; returns False once halted."""
        st = self.state
        if st.halted:
            return False
        if not 0 <= st.pc < len(self.program):
            raise RuntimeError(f"pc {st.pc} outside program ({len(self.program)} instructions)")
        inst: Instruction = self.program[st.pc]
        srcvals = {r: st.read(r) for r in inst.srcs}
        result = evaluate(inst, srcvals, st.flags, st.pc)

        for reg, value in result.writes.items():
            st.write(reg, value)
        if result.new_flags is not None:
            st.flags = result.new_flags
        if inst.opcode == Opcode.LDR:
            st.write(inst.rd, self.memory.load(result.addr))
        elif inst.opcode == Opcode.STR:
            self.memory.store(result.addr, result.store_value)
        if result.halt:
            st.halted = True
            return False
        st.pc = result.target if result.taken else st.pc + 1
        self.instructions_executed += 1
        return True

    def run(self) -> ArchState:
        """Run to HALT (or raise if the instruction budget is exceeded)."""
        while self.step():
            if self.instructions_executed > self.max_instructions:
                raise RuntimeError("instruction budget exceeded (missing halt / infinite loop?)")
        return self.state


def run_functional(program: Program, memory: Optional[MainMemory] = None,
                   init_regs: Optional[Dict[Reg, object]] = None) -> FunctionalSimulator:
    """Convenience wrapper: run ``program`` and return the finished simulator."""
    sim = FunctionalSimulator(program, memory)
    for reg, value in (init_regs or {}).items():
        sim.state.write(reg, value)
    sim.run()
    return sim
