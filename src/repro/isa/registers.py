"""Register definitions for the mini AArch64-flavoured ISA.

The ISA exposes two architectural register classes, matching the in-order
core in Table 1 of the paper (32 integer / 32 floating-point registers):

* ``x0``-``x30`` plus ``sp`` (encoded as index 31) — 64-bit integer registers.
* ``d0``-``d31`` — 64-bit floating-point registers.

Registers are small immutable value objects; :attr:`Reg.flat` gives a unique
index in ``[0, 64)`` used by the VRMU tag store and the physical register
file.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from functools import lru_cache

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS


class RegClass(IntEnum):
    """Architectural register class."""

    X = 0  # 64-bit integer
    D = 1  # 64-bit floating point


@dataclass(frozen=True, order=True)
class Reg:
    """An architectural register (class + index).

    Instances are interned through :func:`X`/:func:`D`, and ``flat`` is a
    unique small integer, so hashing by ``flat`` is both correct and fast
    (register lookups are the hottest operation in the simulator).
    """

    rclass: RegClass
    index: int

    def __post_init__(self) -> None:
        limit = NUM_INT_REGS if self.rclass == RegClass.X else NUM_FP_REGS
        if not 0 <= self.index < limit:
            raise ValueError(f"register index {self.index} out of range for {self.rclass.name}")
        object.__setattr__(self, "_flat",
                           self.index + (NUM_INT_REGS if self.rclass == RegClass.D else 0))

    def __hash__(self) -> int:
        return self._flat

    @property
    def flat(self) -> int:
        """Unique flat index across both register classes (0..63)."""
        return self._flat

    @property
    def is_fp(self) -> bool:
        return self.rclass == RegClass.D

    @property
    def name(self) -> str:
        if self.rclass == RegClass.X:
            return "sp" if self.index == 31 else f"x{self.index}"
        return f"d{self.index}"

    def __repr__(self) -> str:
        return self.name


@lru_cache(maxsize=None)
def X(i: int) -> Reg:
    """Integer register ``x<i>`` (``X(31)`` is the stack pointer)."""
    return Reg(RegClass.X, i)


@lru_cache(maxsize=None)
def D(i: int) -> Reg:
    """Floating-point register ``d<i>``."""
    return Reg(RegClass.D, i)


SP = X(31)


def parse_reg(token: str) -> Reg:
    """Parse a register name such as ``x5``, ``sp``, or ``d12``."""
    token = token.strip().lower()
    if token == "sp":
        return SP
    if len(token) < 2 or token[0] not in "xd":
        raise ValueError(f"bad register name {token!r}")
    try:
        idx = int(token[1:])
    except ValueError as exc:
        raise ValueError(f"bad register name {token!r}") from exc
    return X(idx) if token[0] == "x" else D(idx)


def from_flat(flat: int) -> Reg:
    """Inverse of :attr:`Reg.flat`."""
    if not 0 <= flat < NUM_ARCH_REGS:
        raise ValueError(f"flat register index {flat} out of range")
    if flat < NUM_INT_REGS:
        return X(flat)
    return D(flat - NUM_INT_REGS)
