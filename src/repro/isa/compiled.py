"""Threaded-code compilation of :class:`~repro.isa.decoded.DecodedProgram`.

The decode pass (:mod:`repro.isa.decoded`) flattens per-instruction
*metadata*; this module flattens per-instruction *behaviour*.  Every
``DecodedOp`` is lowered to a specialized Python closure capturing its
operand indices, execute latency, flag/memory/branch class and — inside a
branch-free basic block — a direct reference to the successor closure, so a
whole block runs as one "superop" call chain (SESC's pointer-threaded
``icode_ptr`` dispatch, in Python).  The hot loop of a compiled core is
then ``code[thread.pc](core, thread)`` with zero branching on op class.

Closure contract:

* signature ``(core, thread) -> int`` — the number of engine steps
  consumed (>= 1; a superop returns its chain length so the run-loop
  watchdogs count exactly what the interpreted engine counts);
* closures capture **only static program facts** (indices, latencies,
  successor closures).  They never capture the core, a bus slot, or any
  attribute the :class:`~repro.core.instrument.InstrumentBus` can rebind
  (lint rule VRC010) — everything dynamic is read from ``core`` per call,
  so one compiled table is shared by every core over the same program and
  instrument attach/detach can never be defeated by a stale capture;
* the cycle math replicates ``TimelineCore._process_instruction_fast`` /
  ``_process_instruction_instrumented`` (timeline family) and
  ``FGMTCore._process_barrel_instruction`` (barrel family) exactly; the
  equivalence suite (tests/core/test_engine_equivalence.py) holds the two
  engines byte-identical.  Edit them together.

Compiled tables are cached on the ``DecodedProgram`` (itself cached per
(program, icache line size)) keyed by :class:`EngineVariant`, so closures
never leak across (program, line-size, core-variant) combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .decoded import DecodedOp, DecodedProgram
from .instructions import (MASK64, SIGN64, AddrMode, Cond, Flags, Opcode,
                           evaluate)
from .registers import RegClass

__all__ = ["EngineVariant", "CompiledProgram", "compile_program",
           "MAX_CHAIN"]

#: longest superop chain (bounds Python recursion depth per step)
MAX_CHAIN = 48

#: engine families a core can compile for
FAMILIES = ("timeline", "barrel")


@dataclass(frozen=True)
class EngineVariant:
    """The compile key: everything a closure's code shape depends on.

    Two cores whose variants compare equal can share one compiled table;
    anything that changes the emitted code (which hooks fire, whether bus
    epilogues are dispatched, whether a load can context-switch) must be a
    field here — that is the cache-keying guarantee
    ``tests/isa/test_compiled.py`` pins down.
    """

    family: str = "timeline"       # "timeline" | "barrel"
    reg_hook: bool = False         # decode_regs_ready overridden (VRMU)
    commit_hook: bool = False      # on_commit overridden
    miss_switch: bool = False      # switch_on_miss and >1 thread
    instrumented: bool = False     # bus non-empty: dispatch epilogues
    #: superop chaining.  Off for cores inside a multi-core node: the
    #: node interleaves cores per step() in local-clock order, and a
    #: chained step would batch one core's shared-memory traffic ahead
    #: of its peers, changing crossbar/DRAM contention order vs the
    #: interpreted engine.  Part of the key so chained and unchained
    #: tables never collide in the compile cache.
    chained: bool = True


class CompiledProgram:
    """A per-(DecodedProgram, EngineVariant) closure table."""

    __slots__ = ("dprog", "variant", "code")

    def __init__(self, dprog: DecodedProgram, variant: EngineVariant,
                 code: List[Callable]) -> None:
        self.dprog = dprog
        self.variant = variant
        self.code = code

    def __len__(self) -> int:
        return len(self.code)


def compile_program(dprog: DecodedProgram,
                    variant: EngineVariant) -> CompiledProgram:
    """Cached compile of ``dprog`` for ``variant``.

    The cache lives on the DecodedProgram (one per (program, line-size)),
    so the full key is (program identity, icache line size, variant) —
    mirroring the decode-cache guarantees, including the staleness guard.
    """
    if variant.family not in FAMILIES:
        raise ValueError(f"unknown engine family {variant.family!r}")
    cache = dprog.compiled
    cp = cache.get(variant)
    if cp is None or len(cp.code) != len(dprog.ops):
        cp = CompiledProgram(dprog, variant, _build_code(dprog, variant))
        cache[variant] = cp
    return cp


class _Unsupported(Exception):
    """A specialized factory can't express this op; fall back to the
    generic (evaluate()-based) closure, which handles everything."""


def _block_leaders(dprog: DecodedProgram) -> set:
    """Basic-block leader pcs from the PR 8 dataflow CFG (superop
    boundaries).  Imported lazily: analysis sits above isa in the layer
    order."""
    from ..analysis.dataflow.cfg import build_cfg
    return {b.start for b in build_cfg(dprog.program).blocks}


def _build_code(dprog: DecodedProgram,
                variant: EngineVariant) -> List[Callable]:
    ops = dprog.ops
    n = len(ops)
    if variant.family == "barrel":
        if variant.instrumented:
            return [_barrel_instrumented(ops, pc, variant)
                    for pc in range(n)]
        return [_barrel_factory(ops, pc, variant) for pc in range(n)]
    if variant.instrumented:
        return [_instrumented_step(ops[pc], variant) for pc in range(n)]
    # fast timeline: chain branch-free runs inside one basic block into a
    # superop (built in reverse pc order so the successor closure exists)
    leaders = _block_leaders(dprog) if variant.chained else None
    code: List[Optional[Callable]] = [None] * n
    depth = [0] * n
    for pc in range(n - 1, -1, -1):
        d = ops[pc]
        chain = None
        npc = pc + 1
        if (variant.chained and not d.is_branch and not d.is_halt
                and npc < n and npc not in leaders
                and depth[npc] < MAX_CHAIN):
            chain = code[npc]
            depth[pc] = depth[npc] + 1
        code[pc] = _timeline_factory(d, variant, chain)
    return code


def _timeline_factory(d: DecodedOp, variant: EngineVariant,
                      chain: Optional[Callable]) -> Callable:
    try:
        op = d.inst.opcode
        if d.is_halt:
            return _halt_fast(d, variant)
        if d.is_branch:
            return _branch_fast(d, variant)
        if d.is_load:
            return _ldr_fast(d, variant, chain)
        if d.is_store:
            return _str_fast(d, variant, chain)
        if op is Opcode.CMP:
            return _cmp_fast(d, variant, chain)
        return _simple_fast(d, variant, chain)
    except _Unsupported:
        return _generic_step(d, variant, chain)


# --------------------------------------------------------------- op lowering
_ALU2 = {
    Opcode.ADD: lambda a, b: (a + b) & MASK64,
    Opcode.SUB: lambda a, b: (a - b) & MASK64,
    Opcode.AND: lambda a, b: a & b,
    Opcode.ORR: lambda a, b: a | b,
    Opcode.EOR: lambda a, b: a ^ b,
    Opcode.LSL: lambda a, b: (a << (b & 63)) & MASK64,
    Opcode.LSR: lambda a, b: (a & MASK64) >> (b & 63),
    Opcode.MUL: lambda a, b: (a * b) & MASK64,
}

_U64 = 1 << 64


def _asr(a: int, b: int) -> int:
    a &= MASK64
    if a & SIGN64:
        a -= _U64
    return (a >> (b & 63)) & MASK64


_ALU2[Opcode.ASR] = _asr

_COND_TESTS = {
    Cond.EQ: lambda f: f.z,
    Cond.NE: lambda f: not f.z,
    Cond.LT: lambda f: f.n != f.v,
    Cond.LE: lambda f: f.z or (f.n != f.v),
    Cond.GT: lambda f: (not f.z) and (f.n == f.v),
    Cond.GE: lambda f: f.n == f.v,
}


def _x_index(reg) -> int:
    if reg is None or reg.rclass is not RegClass.X:
        raise _Unsupported
    return reg.index


def _d_index(reg) -> int:
    if reg is None or reg.rclass is not RegClass.D:
        raise _Unsupported
    return reg.index


def _make_compute(d: DecodedOp):
    """Lower a register-writing ALU/FP/move op to
    ``compute(xregs, dregs) -> value`` plus its destination.  Raises
    :class:`_Unsupported` for anything outside the expected shapes."""
    inst = d.inst
    op = inst.opcode
    if op is Opcode.NOP:
        return None, None
    rd = inst.rd
    if op in _ALU2:
        a = _x_index(inst.rn)
        _x_index(rd)
        f = _ALU2[op]
        if inst.rm is not None:
            b = _x_index(inst.rm)
            return (lambda x, dr: f(x[a], x[b])), rd
        if inst.imm is None:
            raise _Unsupported
        imm = int(inst.imm) & MASK64
        return (lambda x, dr: f(x[a], imm)), rd
    if op is Opcode.MADD:
        a = _x_index(inst.rn)
        b = _x_index(inst.rm)
        c = _x_index(inst.ra)
        _x_index(rd)
        return (lambda x, dr: (x[a] * x[b] + x[c]) & MASK64), rd
    if op is Opcode.MOV:
        _x_index(rd)
        if inst.rn is not None:
            a = _x_index(inst.rn)
            return (lambda x, dr: x[a]), rd
        if inst.imm is None:
            raise _Unsupported
        imm = int(inst.imm) & MASK64
        return (lambda x, dr: imm), rd
    if op is Opcode.ADR:
        _x_index(rd)
        if inst.imm is None:
            raise _Unsupported
        imm = int(inst.imm) & MASK64
        return (lambda x, dr: imm), rd
    if op is Opcode.FMOV:
        _d_index(rd)
        if inst.rn is not None:
            a = _d_index(inst.rn)
            return (lambda x, dr: dr[a]), rd
        if inst.imm is None:
            raise _Unsupported
        imm = float(inst.imm)
        return (lambda x, dr: imm), rd
    if op is Opcode.FADD:
        a, b = _d_index(inst.rn), _d_index(inst.rm)
        _d_index(rd)
        return (lambda x, dr: dr[a] + dr[b]), rd
    if op is Opcode.FSUB:
        a, b = _d_index(inst.rn), _d_index(inst.rm)
        _d_index(rd)
        return (lambda x, dr: dr[a] - dr[b]), rd
    if op is Opcode.FMUL:
        a, b = _d_index(inst.rn), _d_index(inst.rm)
        _d_index(rd)
        return (lambda x, dr: dr[a] * dr[b]), rd
    if op is Opcode.FMADD:
        a, b, c = (_d_index(inst.rn), _d_index(inst.rm),
                   _d_index(inst.ra))
        _d_index(rd)
        return (lambda x, dr: dr[a] * dr[b] + dr[c]), rd
    raise _Unsupported


def _addr_lowering(d: DecodedOp):
    """Lower the addressing mode to ``(addr_fn(xregs), writeback_fn)``.

    ``addr_fn`` returns the effective address; ``writeback_fn`` is None or
    ``(xregs) -> new_base`` for post-index."""
    inst = d.inst
    rn = _x_index(inst.rn)
    mode = inst.mode
    if mode is AddrMode.OFF_IMM:
        imm = int(inst.imm or 0)
        return (lambda x: (x[rn] + imm) & MASK64), None, rn
    if mode is AddrMode.OFF_REG:
        rm = _x_index(inst.rm)
        sh = inst.shift
        return (lambda x: (x[rn] + ((x[rm] << sh) & MASK64)) & MASK64,
                None, rn)
    if mode is AddrMode.POST_IMM:
        imm = int(inst.imm or 0)
        return (lambda x: x[rn] & MASK64,
                lambda x: (x[rn] + imm) & MASK64, rn)
    raise _Unsupported


# ---------------------------------------------------- timeline fast closures
#
# Each factory captures only static facts and emits a closure whose cycle
# math line-for-line mirrors TimelineCore._process_instruction_fast.  The
# shared fetch/decode/execute prologue is repeated in every body on
# purpose: a helper call per stage would cost more than the interpreter
# saves.

def _simple_fast(d: DecodedOp, variant: EngineVariant,
                 chain: Optional[Callable]) -> Callable:
    compute, rd = _make_compute(d)
    D = d
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook
    RD_IS_X = rd is not None and rd.rclass is RegClass.X
    RD_IDX = rd.index if rd is not None else 0
    RD_FLAT = rd._flat if rd is not None else 0
    HAS_DEST = rd is not None
    CHAIN = chain

    def step(core, thread):
        # fetch
        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                core.stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at
        # decode
        sb = core.scoreboard
        t_issue = t_d + 1
        for f in SRC_FLATS:
            w = sb.get(f, 0)
            if w > t_issue:
                t_issue = w
        if REG_HOOK:
            t_regs = core.decode_regs_ready(thread, D, t_d)
            if t_regs > t_issue:
                t_issue = t_regs
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1
        # execute
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        # commit
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        thread.instructions += 1
        core.now = t_c
        # architectural update
        if HAS_DEST:
            if RD_IS_X:
                thread.xregs[RD_IDX] = compute(thread.xregs, thread.dregs)
            else:
                thread.dregs[RD_IDX] = compute(thread.xregs, thread.dregs)
            sb[RD_FLAT] = t_ex_done
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)
        thread.pc = NEXT
        if CHAIN is None:
            return 1
        return 1 + CHAIN(core, thread)

    return step


def _cmp_fast(d: DecodedOp, variant: EngineVariant,
              chain: Optional[Callable]) -> Callable:
    inst = d.inst
    RN = _x_index(inst.rn)
    HAS_RM = inst.rm is not None
    RM = _x_index(inst.rm) if HAS_RM else 0
    if not HAS_RM and inst.imm is None:
        raise _Unsupported
    IMM_B = 0 if HAS_RM else int(inst.imm) & MASK64
    D = d
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook
    CHAIN = chain

    def step(core, thread):
        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                core.stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at
        sb = core.scoreboard
        t_issue = t_d + 1
        for f in SRC_FLATS:
            w = sb.get(f, 0)
            if w > t_issue:
                t_issue = w
        if REG_HOOK:
            t_regs = core.decode_regs_ready(thread, D, t_d)
            if t_regs > t_issue:
                t_issue = t_regs
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        thread.instructions += 1
        core.now = t_c
        # NZCV (exact evaluate() semantics, inlined)
        x = thread.xregs
        a = x[RN]
        b = x[RM] if HAS_RM else IMM_B
        diff = (a - b) & MASK64
        sa = a - _U64 if a & SIGN64 else a
        sbv = b - _U64 if b & SIGN64 else b
        sd = diff - _U64 if diff & SIGN64 else diff
        thread.flags = Flags(bool(diff & SIGN64), diff == 0, a >= b,
                             (sa - sbv) != sd)
        core.flags_ready = t_ex_done
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)
        thread.pc = NEXT
        if CHAIN is None:
            return 1
        return 1 + CHAIN(core, thread)

    return step


def _branch_fast(d: DecodedOp, variant: EngineVariant) -> Callable:
    inst = d.inst
    op = inst.opcode
    TARGET = inst.target
    if TARGET is None:
        raise _Unsupported
    KIND = 0                       # 0: B, 1: BCOND, 2: CBZ/CBNZ
    TEST = None
    RN = 0
    WANT_ZERO = False
    if op is Opcode.BCOND:
        KIND = 1
        TEST = _COND_TESTS[inst.cond]
    elif op in (Opcode.CBZ, Opcode.CBNZ):
        KIND = 2
        RN = _x_index(inst.rn)
        WANT_ZERO = op is Opcode.CBZ
    D = d
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    READS_FLAGS = d.reads_flags
    NEXT = d.pc + 1
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook

    def step(core, thread):
        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                core.stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at
        sb = core.scoreboard
        t_issue = t_d + 1
        for f in SRC_FLATS:
            w = sb.get(f, 0)
            if w > t_issue:
                t_issue = w
        if READS_FLAGS:
            fr = core.flags_ready
            if fr > t_issue:
                t_issue = fr
        if REG_HOOK:
            t_regs = core.decode_regs_ready(thread, D, t_d)
            if t_regs > t_issue:
                t_issue = t_regs
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        thread.instructions += 1
        core.now = t_c
        if KIND == 0:
            taken = True
        elif KIND == 1:
            taken = TEST(thread.flags)
        else:
            taken = (thread.xregs[RN] == 0) == WANT_ZERO
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)
        if taken:
            thread.pc = TARGET
            core.fetch_avail = t_ex_done + 1 + core.config.redirect_penalty
            core.stats.inc("taken_branches")
        else:
            thread.pc = NEXT
        return 1

    return step


def _ldr_fast(d: DecodedOp, variant: EngineVariant,
              chain: Optional[Callable]) -> Callable:
    addr_fn, wb_fn, rn_idx = _addr_lowering(d)
    inst = d.inst
    rd = inst.rd
    if rd is None:
        raise _Unsupported
    RD_IS_X = rd.rclass is RegClass.X
    RD_IDX = rd.index
    RD_FLAT = rd._flat
    RN_IDX = rn_idx
    RN_FLAT = inst.rn._flat
    D = d
    INST = inst
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook
    MISS_SWITCH = variant.miss_switch
    CHAIN = chain

    def step(core, thread):
        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                core.stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at
        sb = core.scoreboard
        t_issue = t_d + 1
        for f in SRC_FLATS:
            w = sb.get(f, 0)
            if w > t_issue:
                t_issue = w
        if REG_HOOK:
            t_regs = core.decode_regs_ready(thread, D, t_d)
            if t_regs > t_issue:
                t_issue = t_regs
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        # memory
        x = thread.xregs
        addr = addr_fn(x)
        t_m = core._load_slot_wait(t_ex_done)
        t_issue_mem, r = core.dcache_request(t_m, addr, is_load_data=True)
        data_at = r.complete_at
        if MISS_SWITCH and r.switch_signal:
            if core._handle_miss_switch(thread, INST, t_issue_mem, r):
                return 1    # thread suspended; load replays on resume
            core.stats.inc("switches_suppressed")
        core.load_slots.append(data_at)
        if not r.hit:
            core.stats.inc("load_miss_stalls")
        # commit
        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        thread.instructions += 1
        core.now = t_c
        # architectural update (post-index writeback before the dest, so
        # ldr xN, [xN], #imm resolves exactly as evaluate() orders it)
        if wb_fn is not None:
            x[RN_IDX] = wb_fn(x)
            sb[RN_FLAT] = t_ex_done
        v = core.memory.load(addr)
        if RD_IS_X:
            x[RD_IDX] = int(v) & MASK64
        else:
            thread.dregs[RD_IDX] = float(v)
        sb[RD_FLAT] = data_at
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)
        thread.pc = NEXT
        if CHAIN is None:
            return 1
        return 1 + CHAIN(core, thread)

    return step


def _str_fast(d: DecodedOp, variant: EngineVariant,
              chain: Optional[Callable]) -> Callable:
    addr_fn, wb_fn, rn_idx = _addr_lowering(d)
    inst = d.inst
    rd = inst.rd
    if rd is None:
        raise _Unsupported
    RD_IS_X = rd.rclass is RegClass.X
    RDS_IDX = rd.index
    RN_IDX = rn_idx
    RN_FLAT = inst.rn._flat
    D = d
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook
    CHAIN = chain

    def step(core, thread):
        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                core.stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at
        sb = core.scoreboard
        t_issue = t_d + 1
        for f in SRC_FLATS:
            w = sb.get(f, 0)
            if w > t_issue:
                t_issue = w
        if REG_HOOK:
            t_regs = core.decode_regs_ready(thread, D, t_d)
            if t_regs > t_issue:
                t_issue = t_regs
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        # memory (store value and address both read pre-writeback)
        x = thread.xregs
        sv = x[RDS_IDX] if RD_IS_X else thread.dregs[RDS_IDX]
        addr = addr_fn(x)
        data_at = core._sq_insert(t_ex_done, addr)
        core.memory.store(addr, sv)
        # commit
        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        thread.instructions += 1
        core.now = t_c
        if wb_fn is not None:
            x[RN_IDX] = wb_fn(x)
            sb[RN_FLAT] = t_ex_done
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)
        thread.pc = NEXT
        if CHAIN is None:
            return 1
        return 1 + CHAIN(core, thread)

    return step


def _halt_fast(d: DecodedOp, variant: EngineVariant) -> Callable:
    D = d
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook

    def step(core, thread):
        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                core.stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at
        t_issue = t_d + 1
        if REG_HOOK:
            t_regs = core.decode_regs_ready(thread, D, t_d)
            if t_regs > t_issue:
                t_issue = t_regs
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        core.now = t_c          # halt commits but is not an instruction
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)
        core._halt_thread(thread)
        return 1

    return step


def _generic_step(d: DecodedOp, variant: EngineVariant,
                  chain: Optional[Callable]) -> Callable:
    """Full-fidelity fallback: evaluate()-based replica of the interpreted
    fast body, with flat scoreboard keys.  Handles every op shape the
    specialized factories decline."""
    D = d
    INST = d.inst
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    SRC_READS = d.src_reads
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    READS_FLAGS = d.reads_flags
    IS_LOAD = d.is_load
    IS_STORE = d.is_store
    RD = d.rd
    NEXT = d.pc + 1
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook
    MISS_SWITCH = variant.miss_switch
    CHAIN = chain
    X = RegClass.X

    def step(core, thread):
        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                core.stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at
        sb = core.scoreboard
        t_issue = t_d + 1
        for f in SRC_FLATS:
            w = sb.get(f, 0)
            if w > t_issue:
                t_issue = w
        if READS_FLAGS:
            fr = core.flags_ready
            if fr > t_issue:
                t_issue = fr
        if REG_HOOK:
            t_regs = core.decode_regs_ready(thread, D, t_d)
            if t_regs > t_issue:
                t_issue = t_regs
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done

        xregs = thread.xregs
        dregs = thread.dregs
        srcvals = {}
        for reg, is_x, idx in SRC_READS:
            srcvals[reg] = xregs[idx] if is_x else dregs[idx]
        result = evaluate(INST, srcvals, thread.flags, thread.pc)

        data_at = t_ex_done
        if IS_LOAD:
            t_m = core._load_slot_wait(t_ex_done)
            t_issue_mem, r = core.dcache_request(
                t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if MISS_SWITCH and r.switch_signal:
                if core._handle_miss_switch(thread, INST, t_issue_mem, r):
                    return 1
                core.stats.inc("switches_suppressed")
            core.load_slots.append(data_at)
            if not r.hit:
                core.stats.inc("load_miss_stalls")
        elif IS_STORE:
            data_at = core._sq_insert(t_ex_done, result.addr)
            core.memory.store(result.addr, result.store_value)

        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        if not result.halt:
            thread.instructions += 1
        core.now = t_c

        writes = result.writes
        if writes:
            for reg, value in writes.items():
                if reg.rclass is X:
                    xregs[reg.index] = int(value) & MASK64
                else:
                    dregs[reg.index] = float(value)
                sb[reg._flat] = t_ex_done
        if IS_LOAD:
            value = core.memory.load(result.addr)
            if RD.rclass is X:
                xregs[RD.index] = int(value) & MASK64
            else:
                dregs[RD.index] = float(value)
            sb[RD._flat] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            core.flags_ready = t_ex_done
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)

        if result.halt:
            core._halt_thread(thread)
            return 1
        if result.taken:
            thread.pc = result.target
            core.fetch_avail = t_ex_done + 1 + core.config.redirect_penalty
            core.stats.inc("taken_branches")
            return 1
        thread.pc = NEXT
        if CHAIN is None:
            return 1
        return 1 + CHAIN(core, thread)

    return step


def _instrumented_step(d: DecodedOp, variant: EngineVariant) -> Callable:
    """Compiled-instrumented closure: the same per-op constants as the fast
    factories, with the InstrumentBus dispatched from the closure epilogue
    in the fixed faults -> telemetry -> metrics -> profile -> sanitizer ->
    tracer order.  Bus slots are read from ``core.bus`` on every call
    (never captured: VRC010), so attach/detach between steps takes effect
    immediately.  No superop chaining: probe granularity stays
    per-instruction."""
    D = d
    INST = d.inst
    PC = d.pc
    LINE = d.line
    ADDR = d.addr
    LAT = d.ex_latency
    SRC_READS = d.src_reads
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    READS_FLAGS = d.reads_flags
    IS_LOAD = d.is_load
    IS_STORE = d.is_store
    RD = d.rd
    NEXT = d.pc + 1
    TEXT = INST.text or INST.opcode.name.lower()
    REG_HOOK = variant.reg_hook
    COMMIT_HOOK = variant.commit_hook
    MISS_SWITCH = variant.miss_switch
    X = RegClass.X

    def step(core, thread):
        bus = core.bus
        faults = bus.faults
        telemetry = bus.telemetry
        metrics = bus.metrics
        profile = bus.profile
        sanitizer = bus.sanitizer
        tracer = bus.tracer
        stats = core.stats

        fa = core.fetch_avail
        t_d = core.decode_free
        if fa > t_d:
            t_d = fa
        icache_missed = False
        if LINE != core._last_fetch_line:
            core._last_fetch_line = LINE
            ic = core.icache
            t0 = t_d - ic.config.latency
            r = ic.access(t0 if t0 > 0 else 0, ADDR,
                          requestor=core.core_id)
            if not r.hit:
                stats.inc("icache_miss_stalls")
                icache_missed = True
            if r.complete_at > t_d:
                t_d = r.complete_at
        if faults is not None:
            t_d = faults.on_instruction(thread, INST, t_d)

        sb = core.scoreboard
        t_ops = t_d
        for f in SRC_FLATS:
            w = sb.get(f, 0)
            if w > t_ops:
                t_ops = w
        if READS_FLAGS and core.flags_ready > t_ops:
            t_ops = core.flags_ready
        t_regs = (core.decode_regs_ready(thread, D, t_d)
                  if REG_HOOK else t_d)
        t_issue = max(t_d + 1, t_ops, t_regs)
        core.decode_free = t_issue
        fa += 1
        t_d1 = t_d + 1
        core.fetch_avail = fa if fa > t_d1 else t_d1

        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done

        xregs = thread.xregs
        dregs = thread.dregs
        srcvals = {}
        for reg, is_x, idx in SRC_READS:
            srcvals[reg] = xregs[idx] if is_x else dregs[idx]
        result = evaluate(INST, srcvals, thread.flags, thread.pc)

        data_at = t_ex_done
        load_missed = False
        if IS_LOAD:
            t_m = core._load_slot_wait(t_ex_done)
            t_issue_mem, r = core.dcache_request(
                t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if MISS_SWITCH and r.switch_signal:
                if core._handle_miss_switch(thread, INST, t_issue_mem, r):
                    return 1
                stats.inc("switches_suppressed")
                if telemetry is not None:
                    telemetry.on_stall_in_place(
                        thread.tid, t_issue_mem, data_at,
                        "suppressed-switch")
            core.load_slots.append(data_at)
            if not r.hit:
                stats.inc("load_miss_stalls")
                load_missed = True
        elif IS_STORE:
            data_at = core._sq_insert(t_ex_done, result.addr)
            core.memory.store(result.addr, result.store_value)

        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        core.commits_since_switch += 1
        thread.fruitless = 0
        if not result.halt:
            thread.instructions += 1
        core.now = t_c
        if telemetry is not None:
            telemetry.on_commit(t_c)
        if metrics is not None:
            metrics.on_commit(thread, D, t_c)
        if profile is not None:
            spill_wait = core.decode_spill_wait() if REG_HOOK else 0
            profile.on_commit_timing(thread.tid, PC, D, t_d, t_ops, t_regs,
                                     t_ex_done, data_at, t_c, icache_missed,
                                     load_missed, spill_wait)

        writes = result.writes
        if writes:
            for reg, value in writes.items():
                if reg.rclass is X:
                    xregs[reg.index] = int(value) & MASK64
                else:
                    dregs[reg.index] = float(value)
                sb[reg._flat] = t_ex_done
        if IS_LOAD:
            value = core.memory.load(result.addr)
            if RD.rclass is X:
                xregs[RD.index] = int(value) & MASK64
            else:
                dregs[RD.index] = float(value)
            sb[RD._flat] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            core.flags_ready = t_ex_done
        if COMMIT_HOOK:
            core.on_commit(thread, D, t_c)
        if sanitizer is not None:
            sanitizer.on_commit(thread, INST, result, t_c)
        if tracer is not None and not result.halt:
            tracer.record(thread.tid, thread.pc, TEXT, t_d, t_issue,
                          t_ex_done, data_at, t_c)

        if result.halt:
            core._halt_thread(thread)
            if telemetry is not None:
                telemetry.on_thread_done(thread.tid, t_c)
            return 1
        thread.pc = result.target if result.taken else NEXT
        if result.taken:
            core.fetch_avail = t_ex_done + 1 + core.config.redirect_penalty
            stats.inc("taken_branches")
        return 1

    return step


# -------------------------------------------------------------- barrel family
#
# FGMT closures mirror FGMTCore._process_barrel_instruction.  No superop
# chaining: the barrel scheduler re-picks the earliest-issue thread after
# every instruction, so a chain would defeat the rotation.  Each closure
# instead precomputes the *operand-ready peek* of its successor(s) — the
# next op's source flats and flag read — so the epilogue updates
# ``_issue_ready`` without touching the decoded program.

def _barrel_peek(ops: List[DecodedOp], pc: int):
    if pc < 0 or pc >= len(ops):
        raise _Unsupported
    nd = ops[pc]
    return tuple(r._flat for r in nd.srcs), nd.reads_flags


def _barrel_factory(ops: List[DecodedOp], pc: int,
                    variant: EngineVariant) -> Callable:
    d = ops[pc]
    try:
        op = d.inst.opcode
        if d.is_halt:
            return _barrel_halt(d)
        if d.is_branch:
            return _barrel_branch(ops, d)
        if d.is_load:
            return _barrel_ldr(ops, d)
        if d.is_store:
            return _barrel_str(ops, d)
        if op is Opcode.CMP:
            return _barrel_cmp(ops, d)
        return _barrel_simple(ops, d)
    except _Unsupported:
        return _barrel_generic(d)


def _barrel_simple(ops: List[DecodedOp], d: DecodedOp) -> Callable:
    compute, rd = _make_compute(d)
    ND_FLATS, ND_FLAGS = _barrel_peek(ops, d.pc + 1)
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1
    RD_IS_X = rd is not None and rd.rclass is RegClass.X
    RD_IDX = rd.index if rd is not None else 0
    RD_FLAT = rd._flat if rd is not None else 0
    HAS_DEST = rd is not None

    def step(core, thread):
        tid = thread.tid
        ir = core._issue_ready
        board = core._boards[tid]
        t_ops = 0
        for f in SRC_FLATS:
            w = board.get(f, 0)
            if w > t_ops:
                t_ops = w
        t_issue = core.decode_free + 1
        if t_ops > t_issue:
            t_issue = t_ops
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        thread.instructions += 1
        core.now = min(ir.values())
        if HAS_DEST:
            if RD_IS_X:
                thread.xregs[RD_IDX] = compute(thread.xregs, thread.dregs)
            else:
                thread.dregs[RD_IDX] = compute(thread.xregs, thread.dregs)
            board[RD_FLAT] = t_ex_done
        thread.pc = NEXT
        t_next = t_issue + 1
        for f in ND_FLATS:
            w = board.get(f, 0)
            if w > t_next:
                t_next = w
        if ND_FLAGS:
            fr = core._flags_ready[tid]
            if fr > t_next:
                t_next = fr
        ir[tid] = t_next
        return 1

    return step


def _barrel_cmp(ops: List[DecodedOp], d: DecodedOp) -> Callable:
    inst = d.inst
    RN = _x_index(inst.rn)
    HAS_RM = inst.rm is not None
    RM = _x_index(inst.rm) if HAS_RM else 0
    if not HAS_RM and inst.imm is None:
        raise _Unsupported
    IMM_B = 0 if HAS_RM else int(inst.imm) & MASK64
    ND_FLATS, ND_FLAGS = _barrel_peek(ops, d.pc + 1)
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1

    def step(core, thread):
        tid = thread.tid
        ir = core._issue_ready
        board = core._boards[tid]
        t_ops = 0
        for f in SRC_FLATS:
            w = board.get(f, 0)
            if w > t_ops:
                t_ops = w
        t_issue = core.decode_free + 1
        if t_ops > t_issue:
            t_issue = t_ops
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        thread.instructions += 1
        core.now = min(ir.values())
        x = thread.xregs
        a = x[RN]
        b = x[RM] if HAS_RM else IMM_B
        diff = (a - b) & MASK64
        sa = a - _U64 if a & SIGN64 else a
        sbv = b - _U64 if b & SIGN64 else b
        sd = diff - _U64 if diff & SIGN64 else diff
        thread.flags = Flags(bool(diff & SIGN64), diff == 0, a >= b,
                             (sa - sbv) != sd)
        fls = core._flags_ready
        fls[tid] = t_ex_done
        thread.pc = NEXT
        t_next = t_issue + 1
        for f in ND_FLATS:
            w = board.get(f, 0)
            if w > t_next:
                t_next = w
        if ND_FLAGS:
            fr = fls[tid]
            if fr > t_next:
                t_next = fr
        ir[tid] = t_next
        return 1

    return step


def _barrel_branch(ops: List[DecodedOp], d: DecodedOp) -> Callable:
    inst = d.inst
    op = inst.opcode
    TARGET = inst.target
    if TARGET is None:
        raise _Unsupported
    KIND = 0
    TEST = None
    RN = 0
    WANT_ZERO = False
    if op is Opcode.BCOND:
        KIND = 1
        TEST = _COND_TESTS[inst.cond]
    elif op in (Opcode.CBZ, Opcode.CBNZ):
        KIND = 2
        RN = _x_index(inst.rn)
        WANT_ZERO = op is Opcode.CBZ
    TGT_FLATS, TGT_FLAGS = _barrel_peek(ops, TARGET)
    if KIND == 0:       # unconditional: the fallthrough peek is never used
        FT_FLATS, FT_FLAGS = (), False
    else:
        FT_FLATS, FT_FLAGS = _barrel_peek(ops, d.pc + 1)
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    READS_FLAGS = d.reads_flags
    NEXT = d.pc + 1

    def step(core, thread):
        tid = thread.tid
        ir = core._issue_ready
        board = core._boards[tid]
        t_ops = 0
        for f in SRC_FLATS:
            w = board.get(f, 0)
            if w > t_ops:
                t_ops = w
        if READS_FLAGS:
            fr = core._flags_ready[tid]
            if fr > t_ops:
                t_ops = fr
        t_issue = core.decode_free + 1
        if t_ops > t_issue:
            t_issue = t_ops
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        thread.instructions += 1
        core.now = min(ir.values())
        if KIND == 0:
            taken = True
        elif KIND == 1:
            taken = TEST(thread.flags)
        else:
            taken = (thread.xregs[RN] == 0) == WANT_ZERO
        if taken:
            thread.pc = TARGET
            nd_flats, nd_flags = TGT_FLATS, TGT_FLAGS
        else:
            thread.pc = NEXT
            nd_flats, nd_flags = FT_FLATS, FT_FLAGS
        t_next = t_issue + 1
        for f in nd_flats:
            w = board.get(f, 0)
            if w > t_next:
                t_next = w
        if nd_flags:
            fr = core._flags_ready[tid]
            if fr > t_next:
                t_next = fr
        if taken:
            rp = t_ex_done + core.config.redirect_penalty
            if rp > t_next:
                t_next = rp
        ir[tid] = t_next
        return 1

    return step


def _barrel_ldr(ops: List[DecodedOp], d: DecodedOp) -> Callable:
    addr_fn, wb_fn, rn_idx = _addr_lowering(d)
    inst = d.inst
    rd = inst.rd
    if rd is None:
        raise _Unsupported
    RD_IS_X = rd.rclass is RegClass.X
    RD_IDX = rd.index
    RD_FLAT = rd._flat
    RN_IDX = rn_idx
    RN_FLAT = inst.rn._flat
    ND_FLATS, ND_FLAGS = _barrel_peek(ops, d.pc + 1)
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1

    def step(core, thread):
        tid = thread.tid
        ir = core._issue_ready
        board = core._boards[tid]
        t_ops = 0
        for f in SRC_FLATS:
            w = board.get(f, 0)
            if w > t_ops:
                t_ops = w
        t_issue = core.decode_free + 1
        if t_ops > t_issue:
            t_issue = t_ops
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        x = thread.xregs
        addr = addr_fn(x)
        t_m = core._load_slot_wait(t_ex_done)
        _, r = core.dcache_request(t_m, addr, is_load_data=True)
        data_at = r.complete_at
        if not r.hit:
            core.stats.inc("load_miss_stalls")
        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        thread.instructions += 1
        core.now = min(ir.values())
        if wb_fn is not None:
            x[RN_IDX] = wb_fn(x)
            board[RN_FLAT] = t_ex_done
        v = core.memory.load(addr)
        if RD_IS_X:
            x[RD_IDX] = int(v) & MASK64
        else:
            thread.dregs[RD_IDX] = float(v)
        board[RD_FLAT] = data_at
        thread.pc = NEXT
        t_next = t_issue + 1
        for f in ND_FLATS:
            w = board.get(f, 0)
            if w > t_next:
                t_next = w
        if ND_FLAGS:
            fr = core._flags_ready[tid]
            if fr > t_next:
                t_next = fr
        ir[tid] = t_next
        return 1

    return step


def _barrel_str(ops: List[DecodedOp], d: DecodedOp) -> Callable:
    addr_fn, wb_fn, rn_idx = _addr_lowering(d)
    inst = d.inst
    rd = inst.rd
    if rd is None:
        raise _Unsupported
    RD_IS_X = rd.rclass is RegClass.X
    RDS_IDX = rd.index
    RN_IDX = rn_idx
    RN_FLAT = inst.rn._flat
    ND_FLATS, ND_FLAGS = _barrel_peek(ops, d.pc + 1)
    LAT = d.ex_latency
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    NEXT = d.pc + 1

    def step(core, thread):
        tid = thread.tid
        ir = core._issue_ready
        board = core._boards[tid]
        t_ops = 0
        for f in SRC_FLATS:
            w = board.get(f, 0)
            if w > t_ops:
                t_ops = w
        t_issue = core.decode_free + 1
        if t_ops > t_issue:
            t_issue = t_ops
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        x = thread.xregs
        sv = x[RDS_IDX] if RD_IS_X else thread.dregs[RDS_IDX]
        addr = addr_fn(x)
        data_at = core._sq_insert(t_ex_done, addr)
        core.memory.store(addr, sv)
        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        thread.instructions += 1
        core.now = min(ir.values())
        if wb_fn is not None:
            x[RN_IDX] = wb_fn(x)
            board[RN_FLAT] = t_ex_done
        thread.pc = NEXT
        t_next = t_issue + 1
        for f in ND_FLATS:
            w = board.get(f, 0)
            if w > t_next:
                t_next = w
        if ND_FLAGS:
            fr = core._flags_ready[tid]
            if fr > t_next:
                t_next = fr
        ir[tid] = t_next
        return 1

    return step


def _barrel_halt(d: DecodedOp) -> Callable:
    LAT = d.ex_latency

    def step(core, thread):
        tid = thread.tid
        ir = core._issue_ready
        t_issue = core.decode_free + 1
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        t_c = core.commit_tail + 1
        if t_ex_done > t_c:
            t_c = t_ex_done
        core.commit_tail = t_c
        core.now = min(ir.values())
        core._halt_barrel_thread(thread)
        return 1

    return step


def _barrel_generic(d: DecodedOp) -> Callable:
    """evaluate()-based replica of _process_barrel_instruction (bus empty),
    with flat board keys and the successor peek read from ``core._dops``."""
    D = d
    INST = d.inst
    LAT = d.ex_latency
    SRC_READS = d.src_reads
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    READS_FLAGS = d.reads_flags
    IS_LOAD = d.is_load
    IS_STORE = d.is_store
    RD = d.rd
    NEXT = d.pc + 1
    X = RegClass.X

    def step(core, thread):
        tid = thread.tid
        ir = core._issue_ready
        board = core._boards[tid]
        t_ops = 0
        for f in SRC_FLATS:
            w = board.get(f, 0)
            if w > t_ops:
                t_ops = w
        if READS_FLAGS:
            fr = core._flags_ready[tid]
            if fr > t_ops:
                t_ops = fr
        t_issue = core.decode_free + 1
        if t_ops > t_issue:
            t_issue = t_ops
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        xregs = thread.xregs
        dregs = thread.dregs
        srcvals = {}
        for reg, is_x, idx in SRC_READS:
            srcvals[reg] = xregs[idx] if is_x else dregs[idx]
        result = evaluate(INST, srcvals, thread.flags, thread.pc)
        data_at = t_ex_done
        if IS_LOAD:
            t_m = core._load_slot_wait(t_ex_done)
            _, r = core.dcache_request(t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if not r.hit:
                core.stats.inc("load_miss_stalls")
        elif IS_STORE:
            data_at = core._sq_insert(t_ex_done, result.addr)
            core.memory.store(result.addr, result.store_value)
        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        if not result.halt:
            thread.instructions += 1
        core.now = min(ir.values())
        for reg, value in result.writes.items():
            if reg.rclass is X:
                xregs[reg.index] = int(value) & MASK64
            else:
                dregs[reg.index] = float(value)
            board[reg._flat] = t_ex_done
        if IS_LOAD:
            value = core.memory.load(result.addr)
            if RD.rclass is X:
                xregs[RD.index] = int(value) & MASK64
            else:
                dregs[RD.index] = float(value)
            board[RD._flat] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            core._flags_ready[tid] = t_ex_done
        if result.halt:
            core._halt_barrel_thread(thread)
            return 1
        thread.pc = result.target if result.taken else NEXT
        nd = core._dops[thread.pc]
        t_next = t_issue + 1
        for reg in nd.srcs:
            w = board.get(reg._flat, 0)
            if w > t_next:
                t_next = w
        if nd.reads_flags:
            fr = core._flags_ready[tid]
            if fr > t_next:
                t_next = fr
        if result.taken:
            rp = t_ex_done + core.config.redirect_penalty
            if rp > t_next:
                t_next = rp
        ir[tid] = t_next
        return 1

    return step


def _barrel_instrumented(ops: List[DecodedOp], pc: int,
                         variant: EngineVariant) -> Callable:
    """Compiled-instrumented barrel closure (faults -> profile ->
    sanitizer, the barrel's probe set).  Bus slots are read per call —
    never captured (VRC010)."""
    d = ops[pc]
    D = d
    INST = d.inst
    LAT = d.ex_latency
    SRC_READS = d.src_reads
    SRC_FLATS = tuple(r._flat for r in d.srcs)
    READS_FLAGS = d.reads_flags
    IS_LOAD = d.is_load
    IS_STORE = d.is_store
    RD = d.rd
    NEXT = d.pc + 1
    X = RegClass.X

    def step(core, thread):
        bus = core.bus
        tid = thread.tid
        ir = core._issue_ready
        board = core._boards[tid]
        faults = bus.faults
        if faults is not None:
            ir[tid] = faults.on_instruction(thread, INST, ir[tid])
        t_ops = 0
        for f in SRC_FLATS:
            w = board.get(f, 0)
            if w > t_ops:
                t_ops = w
        if READS_FLAGS:
            fr = core._flags_ready[tid]
            if fr > t_ops:
                t_ops = fr
        t_issue = core.decode_free + 1
        if t_ops > t_issue:
            t_issue = t_ops
        iri = ir[tid]
        if iri > t_issue:
            t_issue = iri
        core.decode_free = t_issue
        ex = core.ex_free
        t_ex_done = (t_issue if t_issue > ex else ex) + LAT
        core.ex_free = t_ex_done
        xregs = thread.xregs
        dregs = thread.dregs
        srcvals = {}
        for reg, is_x, idx in SRC_READS:
            srcvals[reg] = xregs[idx] if is_x else dregs[idx]
        result = evaluate(INST, srcvals, thread.flags, thread.pc)
        data_at = t_ex_done
        load_missed = False
        if IS_LOAD:
            t_m = core._load_slot_wait(t_ex_done)
            _, r = core.dcache_request(t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if not r.hit:
                core.stats.inc("load_miss_stalls")
                load_missed = True
        elif IS_STORE:
            data_at = core._sq_insert(t_ex_done, result.addr)
            core.memory.store(result.addr, result.store_value)
        t_c = core.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        core.commit_tail = t_c
        if not result.halt:
            thread.instructions += 1
        core.now = min(ir.values())
        profile = bus.profile
        if profile is not None:
            profile.on_barrel_commit(tid, thread.pc, D, t_issue, t_ex_done,
                                     data_at, t_c, load_missed)
        for reg, value in result.writes.items():
            if reg.rclass is X:
                xregs[reg.index] = int(value) & MASK64
            else:
                dregs[reg.index] = float(value)
            board[reg._flat] = t_ex_done
        if IS_LOAD:
            value = core.memory.load(result.addr)
            if RD.rclass is X:
                xregs[RD.index] = int(value) & MASK64
            else:
                dregs[RD.index] = float(value)
            board[RD._flat] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            core._flags_ready[tid] = t_ex_done
        sanitizer = bus.sanitizer
        if sanitizer is not None:
            sanitizer.on_commit(thread, INST, result, t_c)
        if result.halt:
            core._halt_barrel_thread(thread)
            return 1
        thread.pc = result.target if result.taken else NEXT
        nd = core._dops[thread.pc]
        t_next = t_issue + 1
        for reg in nd.srcs:
            w = board.get(reg._flat, 0)
            if w > t_next:
                t_next = w
        if nd.reads_flags:
            fr = core._flags_ready[tid]
            if fr > t_next:
                t_next = fr
        if result.taken:
            rp = t_ex_done + core.config.redirect_penalty
            if rp > t_next:
                t_next = rp
        ir[tid] = t_next
        return 1

    return step
