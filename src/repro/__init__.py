"""repro — reproduction of *ViReC: The Virtual Register Context Architecture
for Efficient Near-Memory Multithreading* (ICPP 2025).

Subpackages
-----------
``repro.isa``
    Mini AArch64-flavoured ISA, assembler, and functional golden model.
``repro.memory``
    Cycle-level memory hierarchy: caches with MSHRs and register-line
    pinning, a DDR5-like DRAM timing model, stride prefetcher, crossbar.
``repro.core``
    In-order pipeline and the multithreading baselines (banked CGMT,
    software context switching, RF prefetching, simplified OoO).
``repro.virec``
    The paper's contribution: the VRMU register cache, LRC replacement
    policy, backing-store interface, and the ViReC core.
``repro.area``
    Analytical 45nm area/delay model (CACTI-like) for all core variants.
``repro.workloads``
    The near-memory kernels used in the evaluation (gather, scatter,
    stride, stream, meabo, pointer-chase, reduction, spmv, ...).
``repro.system``
    Table-1 configuration presets, multi-processor near-memory nodes,
    task-level offload, and top-level simulation drivers.
``repro.experiments``
    One driver per paper figure/table, shared by ``benchmarks/``.
"""

__version__ = "1.0.0"
