"""Simulated-hardware fault injection (soft errors in register state).

See :mod:`repro.faults.injector` for the model and
``docs/architecture.md`` ("Fault model & resilience") for the design notes.
"""

from .injector import SITES, FaultConfig, FaultInjector
from .schemes import SCHEMES, ProtectionScheme, get_scheme

__all__ = ["FaultConfig", "FaultInjector", "ProtectionScheme", "SCHEMES",
           "SITES", "get_scheme"]


# -- driver wiring (self-registration into the system plugin registry) ----
from ..system.plugins import SubsystemPlugin, register as _register_plugin


def _plugin_enabled(cfg) -> bool:
    return cfg.faults is not None and FaultConfig.from_spec(cfg.faults).enabled


def _plugin_wire(cfg, node, instances):
    """Attach a per-core FaultInjector when the config asks for one.

    Strictly opt-in: with ``cfg.faults`` unset (or all rates zero and no
    scheduled flips) nothing is wired and the run is bit-identical to one
    on a build without the fault subsystem.
    """
    if not _plugin_enabled(cfg):
        return None
    fc = FaultConfig.from_spec(cfg.faults)
    for cid, (core, inst) in enumerate(zip(node.cores, instances)):
        FaultInjector.attach(
            core, fc.reseeded(fc.seed + 1009 * cid + cfg.seed),
            stats=core.stats.child("faults"), regs=inst.active_regs)
    return None


#: wired first (order 10): telemetry's event sink and the sanitizer's
#: oracle role both depend on the injector being attached already
PLUGIN = _register_plugin(SubsystemPlugin(
    name="faults",
    enabled=_plugin_enabled,
    wire=_plugin_wire,
    ooo_error=("fault injection is not modelled for the ooo host core "
               "(its RF is not a ViReC-style cache)"),
    order=10,
))
