"""Simulated-hardware fault injection (soft errors in register state).

See :mod:`repro.faults.injector` for the model and
``docs/architecture.md`` ("Fault model & resilience") for the design notes.
"""

from .injector import SITES, FaultConfig, FaultInjector
from .schemes import SCHEMES, ProtectionScheme, get_scheme

__all__ = ["FaultConfig", "FaultInjector", "ProtectionScheme", "SCHEMES",
           "SITES", "get_scheme"]
