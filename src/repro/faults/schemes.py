"""Protection-scheme models for the fault-injection subsystem.

Each scheme describes how a storage site (physical register-file slot,
tag-store entry, or backing-store line) responds when a latent bit flip is
*used* — i.e. read by an instruction or consumed by a register fill:

``none``
    No checking.  The flip silently corrupts architectural state and is
    counted as an escape (the workload's functional check is the only
    thing that can still notice).
``parity``
    Detect-only.  The flip is observed on read, but there is no clean copy
    to restore, so the corrupted state would commit — the run aborts with
    :class:`~repro.errors.FaultEscapeError`.
``ecc``
    Correct-on-read.  A SEC-DED-style code repairs the word inline for a
    fixed cycle penalty (``correct_cycles``).
``refill``
    Detect + recover through the existing spill/fill path: the clean copy
    is re-fetched from the backing store (for backing-line faults, from the
    level below the dcache), charging the real fill latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProtectionScheme:
    """Static description of one protection mechanism."""

    name: str
    detects: bool
    corrects: bool
    #: fixed cycles charged per inline correction (ECC decode + writeback)
    correct_cycles: int = 0
    #: fixed cycles between the read and the recovery action starting
    detect_cycles: int = 0


SCHEMES = {
    "none": ProtectionScheme("none", detects=False, corrects=False),
    "parity": ProtectionScheme("parity", detects=True, corrects=False,
                               detect_cycles=1),
    "ecc": ProtectionScheme("ecc", detects=True, corrects=True,
                            correct_cycles=3),
    "refill": ProtectionScheme("refill", detects=True, corrects=True,
                               detect_cycles=1),
}


def get_scheme(name: str) -> ProtectionScheme:
    try:
        return SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown protection scheme {name!r}; use {sorted(SCHEMES)}")
