"""Deterministic, seeded fault injection for register state (Layer 1).

ViReC's architectural bet is that register state may live in the dcache and
the memory below it (the dcache doubles as the register backing store,
Figure 13), so soft errors in three site classes become first-class
correctness hazards that a banked design does not share:

* **rf** — physical register-file slots (the VRMU's data array);
* **tag** — tag-store metadata (the CAM mapping thread/areg -> slot);
* **backing** — lines of the reserved register region in the dcache.

:class:`FaultInjector` flips bits at a configurable per-site per-cycle rate
(or at explicitly scheduled cycles) and models the protection schemes of
:mod:`repro.faults.schemes` when a corrupted site is next *used*.  Injection
timing is a deterministic rate accumulator — expected-count arithmetic, no
random draws — while victim selection uses a seeded PRNG, so a run is exactly
reproducible from ``(config, seed)`` and different seeds explore different
victim registers (the transient-retry story of the resilient sweep runner).

The subsystem is strictly opt-in: cores carry a ``fault_hook`` attribute
that defaults to ``None``, and every probe site guards on it, so runs
without an injector are bit-identical to a build without this package.

Counters (under the injector's ``Stats`` namespace, per core):
``faults_injected``, ``faults_detected``, ``faults_corrected``,
``faults_escaped``, ``faults_masked``, ``recovery_cycles``.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FaultEscapeError
from ..isa.registers import NUM_ARCH_REGS, from_flat
from ..memory.main_memory import line_address
from ..stats.counters import Stats
from .schemes import SCHEMES, get_scheme

SITES = ("rf", "tag", "backing")


@dataclass(frozen=True)
class FaultConfig:
    """Injection campaign description (safe to embed in a RunConfig).

    Rates are per-site per-cycle flip probabilities in expectation: a class
    with ``n`` live sites accrues ``rate * n`` expected flips per cycle.
    ``scheduled`` lists explicit ``(cycle, site)`` injections on top of the
    rates (site in ``{"rf", "tag", "backing"}``).
    """

    rf_rate: float = 0.0
    tag_rate: float = 0.0
    backing_rate: float = 0.0
    scheme: str = "ecc"
    seed: int = 1
    scheduled: Tuple[Tuple[int, str], ...] = ()
    #: charged when refill recovery has no backing path to model (e.g. a
    #: banked core built without a context layout)
    refill_fallback_cycles: int = 40

    def __post_init__(self) -> None:
        get_scheme(self.scheme)
        for name in ("rf_rate", "tag_rate", "backing_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for cycle, site in self.scheduled:
            if site not in SITES:
                raise ValueError(f"unknown fault site {site!r}; use {SITES}")
            if cycle < 0:
                raise ValueError("scheduled fault cycle must be >= 0")

    @property
    def enabled(self) -> bool:
        return bool(self.rf_rate or self.tag_rate or self.backing_rate
                    or self.scheduled)

    @classmethod
    def from_spec(cls, spec) -> "FaultConfig":
        """Normalize a FaultConfig, mapping, or None into a FaultConfig."""
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        spec = dict(spec)
        if "scheduled" in spec:
            spec["scheduled"] = tuple((int(c), str(s))
                                      for c, s in spec["scheduled"])
        return cls(**spec)

    def reseeded(self, seed: int) -> "FaultConfig":
        return replace(self, seed=seed)


class FaultInjector:
    """Per-core fault injection engine + protection-scheme model.

    Works on any :class:`~repro.core.base.TimelineCore`.  On cores with a
    VRMU (ViReC/NSF) it targets physical slots, tag entries, and backing
    lines; on banked-register cores it targets the per-thread banks (the
    only register storage such a design exposes), which is exactly the
    smaller escape surface the fault study measures.
    """

    def __init__(self, config: FaultConfig, core, stats: Optional[Stats] = None,
                 regs: Optional[Sequence[int]] = None) -> None:
        self.cfg = config
        self.scheme = get_scheme(config.scheme)
        self.core = core
        self.stats = stats if stats is not None else Stats("faults")
        self.rng = random.Random(config.seed)
        self.vrmu = getattr(core, "vrmu", None)
        layout = getattr(core, "layout", None)
        if regs is not None:
            self.regs: Tuple[int, ...] = tuple(int(r) for r in regs)
        elif layout is not None and getattr(layout, "used_regs", None):
            self.regs = tuple(layout.used_regs)
        else:
            self.regs = tuple(range(NUM_ARCH_REGS))
        self._threads = {th.tid: th for th in core.threads}
        self._backing_lines: List[int] = list(
            core.dcache.register_region_lines())
        # latent corruption marks (cleared when used, masked, or migrated)
        self._bad_slots: Dict[int, Tuple[int, int]] = {}  # slot -> (tid, areg)
        self._bad_tags: Dict[int, Tuple[int, int]] = {}
        self._bad_regs: Dict[Tuple[int, int], int] = {}   # (tid, flat) -> flips
        self._bad_lines: set = set()
        # deterministic rate accumulators
        self._last = 0
        self._accum = {site: 0.0 for site in SITES}
        self._sched = sorted(config.scheduled)
        self._sched_i = 0
        #: optional :class:`~repro.telemetry.CoreTelemetry` receiving one
        #: event per injected fault (strictly opt-in, observational only)
        self.event_sink = None

    # -- wiring ------------------------------------------------------------
    @classmethod
    def attach(cls, core, config: FaultConfig, stats: Optional[Stats] = None,
               regs: Optional[Sequence[int]] = None) -> "FaultInjector":
        """Build an injector and hook it into ``core``'s probe points."""
        inj = cls(config, core, stats=stats, regs=regs)
        core.fault_hook = inj
        if inj.vrmu is not None:
            inj.vrmu.fault_hook = inj
            core.bsi.fault_hook = inj
        return inj

    # -- site bookkeeping --------------------------------------------------
    def _site_count(self, site: str) -> int:
        if self.vrmu is not None:
            if site in ("rf", "tag"):
                return self.vrmu.tagstore.capacity
            return len(self._backing_lines)
        if site == "rf":
            return len(self._threads) * len(self.regs)
        return 0  # banked cores have no tag store / backing region in use

    def _rates(self):
        return (("rf", self.cfg.rf_rate), ("tag", self.cfg.tag_rate),
                ("backing", self.cfg.backing_rate))

    def _advance(self, t: int) -> None:
        """Accrue rate-driven and scheduled injections up to cycle ``t``."""
        if t > self._last:
            dt = t - self._last
            self._last = t
            for site, rate in self._rates():
                n = self._site_count(site)
                if rate <= 0.0 or n == 0:
                    continue
                acc = self._accum[site] + dt * rate * n
                k = int(acc)
                self._accum[site] = acc - k
                for _ in range(k):
                    self._inject(site)
        while (self._sched_i < len(self._sched)
               and self._sched[self._sched_i][0] <= t):
            self._inject(self._sched[self._sched_i][1])
            self._sched_i += 1

    # -- injection ---------------------------------------------------------
    def _inject(self, site: str) -> None:
        self.stats.inc("faults_injected")
        self.stats.inc(f"faults_injected_{site}")
        if self.event_sink is not None:
            self.event_sink.on_fault(site, self._last)
        if self.vrmu is None:
            if site != "rf":
                self.stats.inc("faults_masked")  # site class absent
                return
            tid = self.rng.choice(sorted(self._threads))
            flat = self.rng.choice(self.regs)
            self._bad_regs[(tid, flat)] = self._bad_regs.get((tid, flat), 0) + 1
            if not self.scheme.detects:
                self._flip_value(tid, flat)
            return
        ts = self.vrmu.tagstore
        if site == "backing":
            if not self._backing_lines:
                self.stats.inc("faults_masked")
                return
            self._bad_lines.add(self.rng.choice(self._backing_lines))
            return
        valid = ts.valid_slots()
        if not len(valid):
            self.stats.inc("faults_masked")  # flip landed in a dead slot
            return
        slot = int(valid[self.rng.randrange(len(valid))])
        info = (int(ts.owner[slot]), int(ts.areg[slot]))
        (self._bad_slots if site == "rf" else self._bad_tags)[slot] = info
        if not self.scheme.detects:
            # unprotected: the architectural value is corrupted on the spot
            # (a wrong tag makes the slot resolve to the wrong value, which
            # is indistinguishable from data corruption at this altitude)
            self._flip_value(*info)

    def _flip_value(self, tid: int, flat: int) -> None:
        """Flip one random bit of the architectural register value."""
        thread = self._threads.get(tid)
        if thread is None:
            self.stats.inc("faults_masked")
            return
        reg = from_flat(flat)
        value = thread.read(reg)
        bit = self.rng.randrange(64)
        if reg.is_fp:
            bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
            value = struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))[0]
        else:
            value = int(value) ^ (1 << bit)
        thread.write(reg, value)
        self.stats.inc("bits_flipped")

    # -- protection-scheme dispatch ----------------------------------------
    def _handle_fault(self, t: int, site: str, clear, refill=None,
                      corrupt=None) -> int:
        """A corrupted site was used at cycle ``t``; apply the scheme.

        ``clear`` removes the latent mark; ``refill`` (optional) re-fetches
        a clean copy and returns its completion cycle; ``corrupt`` (optional)
        applies the architectural bit flip for the unprotected scheme when
        it was not already applied at injection time.
        """
        if not self.scheme.detects:
            if corrupt is not None:
                corrupt()
            self.stats.inc("faults_escaped")
            clear()
            return t
        self.stats.inc("faults_detected")
        if not self.scheme.corrects:
            self.stats.inc("faults_escaped")
            raise FaultEscapeError(
                f"parity-detected fault in {site} at cycle {t} cannot be "
                f"repaired; corrupted state would commit", site=site)
        if self.scheme.name == "ecc":
            clear()
            self.stats.inc("faults_corrected")
            self.stats.inc("recovery_cycles", self.scheme.correct_cycles)
            return t + self.scheme.correct_cycles
        # refill-from-backing-store recovery
        t0 = t + self.scheme.detect_cycles
        done = refill(t0) if refill is not None \
            else t0 + self.cfg.refill_fallback_cycles
        clear()
        self.stats.inc("faults_corrected")
        self.stats.inc("recovery_refills")
        self.stats.inc("recovery_cycles", max(0, done - t))
        return done

    # -- probe points (called from the cores; all opt-in) -------------------
    def on_instruction(self, thread, inst, t: int) -> int:
        """Per-instruction probe from the pipeline front end.

        Advances the injection clock; on banked-register cores also checks
        the instruction's operands against latent bank corruption.
        """
        self._advance(t)
        if self.vrmu is not None:
            return t  # slot-granular checks happen in on_slot_read
        srcs = set(inst.srcs)
        for reg in inst.dests:
            key = (thread.tid, reg.flat)
            if reg not in srcs and key in self._bad_regs:
                del self._bad_regs[key]  # overwritten before ever being read
                self.stats.inc("faults_masked")
        for reg in srcs:
            key = (thread.tid, reg.flat)
            if key in self._bad_regs:
                t = self._handle_fault(
                    t, "rf",
                    clear=lambda k=key: self._bad_regs.pop(k, None),
                    refill=lambda t0, th=thread, r=reg: self._refill_banked(
                        t0, th.tid, r.flat))
        return t

    def on_slot_read(self, tid: int, reg, slot: int, t: int,
                     is_read: bool = True) -> int:
        """Decode-stage probe from the VRMU for a resident slot hit."""
        ready = t
        for store, site in ((self._bad_tags, "tag"), (self._bad_slots, "rf")):
            info = store.get(slot)
            if info is None:
                continue
            if info != (tid, reg.flat):
                # the corrupted entry was spilled before this read: a data
                # flip now lives in the backing store (the dcache-as-backing
                # escape surface); a tag flip died with the eviction
                del store[slot]
                if site == "rf":
                    addr = self.core.layout.reg_addr(*info)
                    self._bad_lines.add(line_address(addr))
                    self.stats.inc("faults_spilled_to_backing")
                else:
                    self.stats.inc("faults_masked")
                continue
            if not is_read:
                del store[slot]  # destination-only write overwrites the flip
                self.stats.inc("faults_masked")
                continue
            ready = max(ready, self._handle_fault(
                t, site,
                clear=lambda s=store, k=slot: s.pop(k, None),
                refill=lambda t0, s=slot, i=info: self._refill_slot(t0, s, *i)))
        return ready

    def on_fill(self, tid: int, flat_reg: int, addr: int, t: int,
                done: int) -> int:
        """BSI probe: a register fill consumed a backing-store line."""
        line = line_address(addr)
        if line not in self._bad_lines:
            return done
        return max(done, self._handle_fault(
            done, "backing",
            clear=lambda: self._bad_lines.discard(line),
            refill=lambda t0, a=addr: self._refill_line(t0, a),
            corrupt=lambda: self._flip_value(tid, flat_reg)))

    # -- recovery actions ---------------------------------------------------
    def _refill_slot(self, t: int, slot: int, tid: int, areg: int) -> int:
        """Re-fetch a clean copy of (tid, areg) through the spill/fill path,
        leaving the mapping in place but pushing its fill-ready cycle."""
        done = self.vrmu.bsi.fill(t, tid, areg)
        self.vrmu.tagstore.refresh_fill(slot, done)
        return done

    def _refill_line(self, t: int, addr: int) -> int:
        """Backing line corrupted: drop it and re-fetch from the level below."""
        self.core.dcache.invalidate_line(addr)
        _, result = self.core.dcache_request(t, addr, is_register=True)
        return result.complete_at

    def _refill_banked(self, t: int, tid: int, flat: int) -> int:
        """Banked bank entry corrupted: restore from the context save area."""
        layout = getattr(self.core, "layout", None)
        if layout is None:
            return t + self.cfg.refill_fallback_cycles
        _, result = self.core.dcache_request(t, layout.reg_addr(tid, flat))
        return result.complete_at

    # -- reporting ----------------------------------------------------------
    def pending_faults(self) -> Dict[str, int]:
        """Latent (injected but not yet used) corruption, per site class."""
        return {"rf": len(self._bad_slots) + len(self._bad_regs),
                "tag": len(self._bad_tags), "backing": len(self._bad_lines)}
