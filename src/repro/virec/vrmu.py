"""Virtual Register Management Unit (Section 5.1).

The VRMU sits in the decode stage.  For each instruction it looks up every
architectural register in the tag store; misses trigger victim selection
(via the replacement policy), a posted spill of the victim, and either a
latency-critical fill (source operands) or a dummy fill (destination-only
operands).  The instruction may enter the backend only when all its source
registers are resident — the front-end stall of Figure 4 (A)->(B).
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..isa.decoded import DecodedOp
from ..isa.instructions import Instruction
from ..stats.counters import Stats
from .bsi import BackingStoreInterface
from .policies import ReplacementPolicy
from .rollback import RollbackQueue
from .tagstore import TagStore


class CapacityError(ValueError):
    """Register file too small to hold one instruction's operands."""


class VRMU:
    """Decode-stage register virtualization engine."""

    #: most registers one instruction can name (madd: 4) plus slack for
    #: in-flight fills of the neighbouring instructions
    MIN_CAPACITY = 6

    def __init__(self, capacity: int, policy: ReplacementPolicy,
                 bsi: BackingStoreInterface,
                 rollback_depth: int = 4,
                 group_evict: int = 1,
                 stats: Optional[Stats] = None) -> None:
        if capacity < self.MIN_CAPACITY:
            raise CapacityError(
                f"register cache needs >= {self.MIN_CAPACITY} entries, got {capacity}")
        if group_evict < 1:
            raise ValueError("group_evict must be >= 1")
        self.stats = stats if stats is not None else Stats("vrmu")
        self.tagstore = TagStore(capacity, policy, self.stats.child("tagstore"))
        self.rollback = RollbackQueue(rollback_depth, self.stats.child("rollback"))
        self.bsi = bsi
        #: whether the policy consumes dead-on-commit hints; gates every
        #: hint-path branch so non-hint policies take byte-identical paths
        self.dead_hints: bool = policy.uses_dead_hints
        #: whether spills of dead victims are elided entirely
        self.elide_dead: bool = policy.elides_dead_writebacks
        #: >1 enables group evictions (the paper's future-work item): when a
        #: victim is needed, up to this many same-owner registers are spilled
        #: together, pre-freeing slots for the following misses.
        self.group_evict = group_evict
        #: registers each thread referenced during its latest run segment
        #: (drives the optional next-context prefetch, see ViReCConfig)
        self.segment_regs: dict = {}
        #: fill-issue cycles the latest :meth:`access` lost to spill port
        #: occupancy (read by the core's profile hook, never fed back into
        #: timing)
        self.last_spill_wait = 0
        #: optional :class:`~repro.faults.FaultInjector` probing physical
        #: register-file slots on every decode-stage read (strictly opt-in)
        self.fault_hook = None
        #: optional :class:`~repro.telemetry.VRMUProbe`; strictly opt-in and
        #: purely observational (occupancy/eviction-cause/residency probes)
        self.probe = None

    # -- decode-stage access ------------------------------------------------
    def access(self, tid: int, inst: Union[Instruction, DecodedOp],
               t: int) -> int:
        """Process one instruction's register lookups at decode time ``t``.

        Accepts an :class:`Instruction` or a :class:`DecodedOp` (the engine
        passes the latter; they expose the same operand attributes).
        Returns the cycle at which all operands are resident and readable.
        """
        regs = inst.regs
        self.last_spill_wait = 0
        if not regs:
            return t
        self.bsi.fill_spill_wait = 0
        ts = self.tagstore
        ts.on_instruction()
        dests = set(inst.dests)
        srcs = set(inst.srcs)

        ready = t
        inst_slots: List[int] = []
        missing = []
        segment = self.segment_regs.setdefault(tid, set())
        for reg in regs:
            segment.add(reg.flat)
            slot = ts.lookup(tid, reg.flat)
            if slot is not None:
                self.stats.inc("hits")
                ts.touch(slot, is_write=reg in dests)
                if self.fault_hook is not None:
                    ready = max(ready, self.fault_hook.on_slot_read(
                        tid, reg, slot, t, is_read=reg in srcs))
                ready = max(ready, int(ts.fill_ready[slot]))
                inst_slots.append(slot)
                if self.probe is not None:
                    self.probe.on_hit(tid, reg.flat, t)
            else:
                self.stats.inc("misses")
                missing.append(reg)
                if self.probe is not None:
                    self.probe.on_miss(tid, reg.flat, t)
        self.stats.inc("accesses", len(regs))

        t_fill = t
        for reg in missing:
            victim_info = None
            victim_dead = False
            slot = ts.free_slot()
            if slot is None:
                victim = ts.select_victim(inst_slots, t_fill)
                if victim is not None and self.group_evict > 1:
                    self._group_evict(victim, inst_slots, t_fill)
                while victim is None:
                    # every candidate is an in-flight fill: wait for the
                    # earliest one to settle, then retry
                    pending = ts.fill_ready[ts.valid]
                    future = pending[pending > t_fill]
                    t_fill = int(future.min()) if future.size else t_fill + 1
                    self.stats.inc("victim_wait_cycles")
                    victim = ts.select_victim(inst_slots, t_fill)
                if self.probe is not None:
                    self.probe.on_evict(victim, tid, "capacity", t_fill)
                # D is cleared when the slot is re-inserted below, so the
                # victim's deadness must be captured before the insert
                victim_dead = self._victim_dead(victim)
                victim_info = ts.evict(victim)
                slot = victim
                self.stats.inc("spill_evictions")
            if reg in srcs:
                done = self.bsi.fill(t_fill, tid, reg.flat)
                ready = max(ready, done)
                ts.insert(slot, tid, reg.flat, t_fill, fill_ready=done,
                          dirty=reg in dests)
                if self.probe is not None:
                    self.probe.on_fill(tid, reg.flat, t_fill, done)
            else:
                done = self.bsi.dummy_fill(t_fill, tid, reg.flat)
                ts.insert(slot, tid, reg.flat, t_fill, fill_ready=done, dirty=True)
                if self.probe is not None:
                    self.probe.on_fill(tid, reg.flat, t_fill, done, dummy=True)
            if self.probe is not None:
                self.probe.on_insert(slot, tid, reg.flat, t_fill)
            inst_slots.append(slot)
            # spill after the fill was issued: fills have port priority
            if victim_info is not None:
                vtid, vreg, vdirty = victim_info
                self._spill_victim(t_fill, victim_dead, vtid, vreg, vdirty)

        self.rollback.push(inst_slots, inst.is_mem)
        self.last_spill_wait = self.bsi.fill_spill_wait
        return ready

    # -- dead-hint plumbing (inert unless a dead-* policy is selected) -------
    def _victim_dead(self, victim: int) -> bool:
        """Whether the chosen victim carries a dead-on-commit hint."""
        if not self.dead_hints:
            return False
        return bool(self.tagstore.policy.D[victim])

    def _spill_victim(self, t: int, dead: bool, vtid: int, vreg: int,
                      vdirty: bool) -> None:
        """Write back (or elide) one evicted register."""
        if dead:
            self.stats.inc("dead_evictions")
            if self.elide_dead:
                self.stats.inc("elided_writebacks")
                self.bsi.elide_spill(t, vtid, vreg)
                return
        self.bsi.spill(t, vtid, vreg, vdirty)
        if self.probe is not None:
            self.probe.on_spill(vtid, vreg, vdirty, t)

    def _group_evict(self, victim: int, inst_slots, t: int) -> None:
        """Spill up to ``group_evict - 1`` additional registers of the
        victim's owning thread, pre-freeing slots for the following misses
        (paper future work: 'improved replacement policies for group
        evictions')."""
        ts = self.tagstore
        victim_owner = int(ts.owner[victim])
        extra = 0
        while extra < self.group_evict - 1:
            candidates = (ts.valid & (ts.owner == victim_owner)
                          & (ts.fill_ready <= t))
            for slot in inst_slots:
                candidates[slot] = False
            candidates[victim] = False
            nxt = ts.policy.select_victim(candidates)
            if nxt is None:
                break
            if self.probe is not None:
                self.probe.on_evict(nxt, victim_owner, "group", t)
            dead = self._victim_dead(nxt)
            vtid, vreg, vdirty = ts.evict(nxt)
            self._spill_victim(t, dead, vtid, vreg, vdirty)
            self.stats.inc("group_evictions")
            extra += 1

    def prefetch_context(self, tid: int, t: int) -> int:
        """Prefetch the registers ``tid`` used in its last run segment into
        the register cache (paper future work: 'combinations of prefetching
        with ViReC caching').  Returns the last fill completion cycle."""
        ts = self.tagstore
        done = t
        for flat in sorted(self.segment_regs.get(tid, ())):
            if ts.lookup(tid, flat) is not None:
                continue
            slot = ts.free_slot()
            if slot is None:
                victim = ts.select_victim([], t)
                if victim is None or int(ts.owner[victim]) == tid:
                    break  # nothing worth displacing
                if self.probe is not None:
                    self.probe.on_evict(victim, tid, "prefetch", t)
                dead = self._victim_dead(victim)
                vtid, vreg, vdirty = ts.evict(victim)
                self._spill_victim(t, dead, vtid, vreg, vdirty)
                slot = victim
            fill_done = self.bsi.fill(t, tid, flat)
            ts.insert(slot, tid, flat, t, fill_ready=fill_done)
            if self.probe is not None:
                self.probe.on_fill(tid, flat, t, fill_done)
                self.probe.on_insert(slot, tid, flat, t)
            done = max(done, fill_done)
            self.stats.inc("context_prefetches")
        return done

    # -- backend signals --------------------------------------------------------
    def on_commit(self, tid: Optional[int] = None,
                  op: Optional[DecodedOp] = None) -> None:
        """Commit detection logic: pop the oldest rollback entry.

        With a dead-hint policy selected, the committing op's statically
        computed kill set (registers provably never read again before
        redefinition — see :mod:`repro.analysis.dataflow`) marks the
        matching resident entries dead.  Marking happens at *commit*, not
        decode, so flushed/replayed instructions never plant speculative
        hints; a flushed op's registers keep their normal metadata.
        """
        self.rollback.pop_commit()
        if not self.dead_hints or op is None or tid is None:
            return
        kills = getattr(op, "kill_flats", None)
        if not kills:
            return
        ts = self.tagstore
        marked = 0
        for flat in kills:
            slot = ts.lookup(tid, flat)
            if slot is not None:
                ts.policy.mark_dead(slot)
                marked += 1
        if marked:
            self.stats.inc("dead_marks", marked)

    def on_flush(self, tid: int, flushed_insts: List[Instruction]) -> None:
        """Context switch flush: reset C bits of in-flight registers.

        ``flushed_insts`` is the missing load plus the younger instructions
        already in the frontend; the youngsters' resident registers were
        accessed by decode just before the switch, so they are marked
        recently-used and in-flight (C=0) — the retention effect of
        Section 4.2.  (Fills for non-resident youngster registers are
        squashed with the flush and not modelled.)
        """
        ts = self.tagstore
        slots = set(self.rollback.flush())
        for inst in flushed_insts:
            for reg in inst.regs:
                slot = ts.lookup(tid, reg.flat)
                if slot is not None:
                    ts.policy.A[slot] = 0
                    slots.add(slot)
        ts.policy.on_flush(slots)
        self.stats.inc("flush_resets", len(slots))

    def on_context_switch(self, prev_tid: int, new_tid: int) -> None:
        self.tagstore.on_context_switch(prev_tid, new_tid)

    # -- reporting -----------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 1.0
