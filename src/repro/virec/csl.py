"""Context Switching Logic helpers (Section 5.2).

The trigger/mask structure of the CSL is implemented across the core:

1. *dcache data-miss trigger* — raised by the cache model
   (:meth:`repro.memory.cache.Cache.access` ``switch_signal``);
2. *oldest-in-flight-is-not-memory mask* — a pending switch waits for older
   long-latency instructions to commit (the timeline core's ``commit_tail``
   bound is exactly this);
3. *BSI-busy mask* — no switch during an outstanding register fill
   (:attr:`repro.virec.bsi.BackingStoreInterface.busy_until`);
4. *forward-progress mask* — at least one commit since the last switch.

This module implements the remaining piece: the **system-register
ping-pong buffer** that prefetches the next thread's system registers while
the current thread runs, overlapping the pipeline warmup (Section 5.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..stats.counters import Stats
from .bsi import BackingStoreInterface


class SysRegBuffer:
    """Double buffer holding the current and next threads' system registers."""

    def __init__(self, bsi: BackingStoreInterface, n_threads: int,
                 stats: Optional[Stats] = None) -> None:
        self.bsi = bsi
        self.n_threads = n_threads
        self.stats = stats if stats is not None else Stats("sysreg")
        self._ready: Dict[int, int] = {}  # tid -> prefetch completion cycle
        self._prev_tid: Optional[int] = None
        #: optional :class:`~repro.telemetry.CoreTelemetry` (strictly opt-in)
        self.event_sink = None

    def switch_to(self, tid: int, t: int) -> int:
        """Perform the buffer swap for a switch to ``tid`` at cycle ``t``.

        Returns the cycle the new thread's system registers are usable.
        In parallel, the previous thread's buffer is written back and the
        *next* round-robin thread's system registers are prefetched — both
        overlap the pipeline refill.
        """
        if tid in self._ready:
            ready = max(t, self._ready.pop(tid))
            if ready > t:
                self.stats.inc("prefetch_late_cycles", ready - t)
                kind = "prefetch-late"
            else:
                self.stats.inc("prefetch_hits")
                kind = "prefetch-hit"
        else:
            ready = self.bsi.sysreg_read(t, tid)  # demand fetch (cold)
            self.stats.inc("demand_fetches")
            kind = "demand"
        if self.event_sink is not None:
            self.event_sink.on_sysreg(kind, tid, t)

        if self._prev_tid is not None and self._prev_tid != tid:
            self.bsi.sysreg_write(ready, self._prev_tid)
        self._prev_tid = tid

        nxt = (tid + 1) % self.n_threads
        if nxt != tid and nxt not in self._ready:
            self._ready[nxt] = self.bsi.sysreg_read(ready, nxt)
            self.stats.inc("prefetches")
        return ready
