"""The ViReC core: CGMT pipeline + VRMU register cache + BSI + pinned dcache.

Assembles the full system architecture of Figure 7 on top of the timeline
CGMT engine:

* decode-stage VRMU lookups gate instruction issue (register fills stall the
  front end, Figure 4 A->B);
* the dcache doubles as the register backing store — the reserved register
  region is pinned and data-load misses inside it never trigger context
  switches (Section 5.3);
* the CSL masks switches while the BSI has outstanding fills and prefetches
  system registers through the ping-pong buffer (Section 5.2).

:func:`make_nsf_core` builds the Named-State-Register-File baseline of
Section 6.1: the same register-cache datapath but with the PLRU policy, a
blocking BSI, and none of ViReC's miss-penalty optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.dataflow import annotate
from ..core.base import CoreConfig, ThreadContext, TimelineCore
from ..core.cgmt import ContextLayout
from ..isa.decoded import DecodedOp
from ..isa.instructions import Instruction
from ..stats.counters import Stats
from .bsi import BackingStoreInterface
from .csl import SysRegBuffer
from .policies import make_policy
from .vrmu import VRMU


@dataclass
class ViReCConfig:
    """ViReC-specific parameters on top of :class:`CoreConfig`."""

    rf_size: int = 32                 # physical register-cache entries
    policy: str = "lrc"
    blocking_bsi: bool = False
    dummy_fill: bool = True
    pinning: bool = True
    sysreg_buffer: bool = True
    rollback_depth: int = 4
    #: spill up to this many same-thread registers per eviction (paper
    #: future work: group evictions); 1 = the paper's evaluated design
    group_evict: int = 1
    #: prefetch the next thread's last-segment registers during the current
    #: run (paper future work: prefetching combined with ViReC caching)
    context_prefetch: bool = False


class ViReCCore(TimelineCore):
    """Near-memory CGMT core with a virtualized register file."""

    def __init__(self, program, icache, dcache, memory, threads,
                 virec: Optional[ViReCConfig] = None,
                 layout: Optional[ContextLayout] = None,
                 config: Optional[CoreConfig] = None,
                 stats: Optional[Stats] = None, core_id: int = 0,
                 engine: Optional[str] = None) -> None:
        config = config or CoreConfig(name="virec", switch_on_miss=True)
        super().__init__(program, icache, dcache, memory, threads,
                         config=config, stats=stats, core_id=core_id,
                         layout=layout, engine=engine)
        self.vconfig = virec or ViReCConfig()
        self.layout = self.layout or ContextLayout()

        vc = self.vconfig
        self.bsi = BackingStoreInterface(
            self.dcache_request, self.layout,
            blocking=vc.blocking_bsi, dummy_fill_enabled=vc.dummy_fill,
            pinning_enabled=vc.pinning, stats=self.stats.child("bsi"))
        self.vrmu = VRMU(vc.rf_size, make_policy(vc.policy, vc.rf_size),
                         self.bsi, rollback_depth=vc.rollback_depth,
                         group_evict=vc.group_evict,
                         stats=self.stats.child("vrmu"))
        self.sysregs = (SysRegBuffer(self.bsi, len(threads),
                                     self.stats.child("sysreg"))
                        if vc.sysreg_buffer else None)
        self._prev_tid: Optional[int] = None

        # compiler-assisted register caching: a dead-hint policy turns the
        # static liveness annotation on (filling the DecodedOp hint slots);
        # for every other policy the decode stays untouched, keeping
        # existing configs byte-identical
        if self.vrmu.dead_hints:
            annotate(self.dprog)
            self.bsi.unpin = self.dcache.unpin

        # reserve + pin the register region in the backing store
        self.dcache.register_region = self.layout.region(len(threads))

    # -- TimelineCore hooks ------------------------------------------------
    def decode_regs_ready(self, thread: ThreadContext, op: DecodedOp,
                          t_decode: int) -> int:
        return self.vrmu.access(thread.tid, op, t_decode)

    def decode_spill_wait(self) -> int:
        return self.vrmu.last_spill_wait

    def on_commit(self, thread: ThreadContext, op: DecodedOp,
                  t_commit: int) -> None:
        if op.has_regs:
            self.vrmu.on_commit(thread.tid, op)

    def on_flush(self, thread: ThreadContext, insts: List[Instruction],
                 t: int) -> None:
        self.vrmu.on_flush(thread.tid, insts)

    def switch_extra_wait(self, t: int) -> int:
        # CSL mask: no switch while a register fill/spill is outstanding
        return max(t, self.bsi.busy_until)

    def switch_in(self, thread: ThreadContext, t: int) -> int:
        if self._prev_tid is not None and self._prev_tid != thread.tid:
            self.vrmu.on_context_switch(self._prev_tid, thread.tid)
        self._prev_tid = thread.tid
        if self.sysregs is not None:
            t = self.sysregs.switch_to(thread.tid, t)
        else:
            t = self.bsi.sysreg_read(t, thread.tid)
        if self.vconfig.context_prefetch and len(self.threads) > 1:
            # warm the round-robin successor's last-segment registers while
            # this thread executes (overlapped; fills ride the BSI)
            nxt = self.threads[(thread.tid + 1) % len(self.threads)]
            if nxt.state is not None and nxt is not thread:
                self.vrmu.prefetch_context(nxt.tid, t)
        # the incoming thread starts a fresh run segment
        self.vrmu.segment_regs.setdefault(thread.tid, set()).clear()
        return t + self.config.switch_refill

    def drop_thread_registers(self, thread: ThreadContext) -> None:
        """Invalidate a finished task's registers without spilling them
        (task-pool redispatch support: the dead context's values must not
        reach the backing store)."""
        ts = self.vrmu.tagstore
        for flat in list(ts.resident_regs(thread.tid)):
            slot = ts.lookup(thread.tid, flat)
            if slot is not None:
                if self.vrmu.probe is not None:
                    self.vrmu.probe.on_evict(slot, thread.tid, "task-drop",
                                             self.now)
                ts.evict(slot)
        self.vrmu.segment_regs.pop(thread.tid, None)
        self.stats.inc("task_context_drops")

    # -- reporting -------------------------------------------------------------
    def finalize_stats(self) -> None:
        super().finalize_stats()
        self.stats.set("rf_hit_rate", self.vrmu.hit_rate)
        self.stats.set("rf_size", self.vconfig.rf_size)


def make_nsf_core(program, icache, dcache, memory, threads,
                  rf_size: int = 32, layout: Optional[ContextLayout] = None,
                  stats: Optional[Stats] = None, core_id: int = 0,
                  engine: Optional[str] = None) -> ViReCCore:
    """Named State Register File baseline [41] (Section 6.1 comparison).

    Same register-cache datapath as ViReC but: PLRU replacement, blocking
    BSI, no register-line pinning, no dummy-fill optimization, and no
    system-register prefetch buffer.
    """
    vcfg = ViReCConfig(rf_size=rf_size, policy="plru", blocking_bsi=True,
                       dummy_fill=False, pinning=False, sysreg_buffer=False)
    return ViReCCore(program, icache, dcache, memory, threads, virec=vcfg,
                     layout=layout, config=CoreConfig(name="nsf", switch_on_miss=True),
                     stats=stats, core_id=core_id, engine=engine)
