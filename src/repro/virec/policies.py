"""Register-cache replacement policies (Section 4 of the paper).

All policies operate on a fully-associative register cache of ``capacity``
entries and expose *eviction priority*: the entry with the **highest**
priority value is evicted first, matching the hardware formulation in
Section 5.1 ("the registers with the highest value are evicted first").

Metadata fields per entry (Table in Section 5.1: T/C/A = 3/1/3 bits):

``T`` (thread recency)
    0 for the running thread; set to maximum (7) for the thread being
    suspended at a context switch; decremented (saturating at 0) for every
    other thread.  With round-robin scheduling, high T = runs furthest in
    the future (Section 4.1, MRT ordering).
``C`` (commit)
    Speculatively initialized to 1 on access; reset to 0 by the rollback
    queue for registers of instructions flushed by a context switch.
    In-flight (C=0) registers are the first to be re-accessed when the
    thread resumes, so they are retained over committed ones (Section 4.2).
``A`` (age)
    3-bit saturating pseudo-LRU age: 0 on access, +1 on every subsequent
    instruction's register-file access.
``D`` (dead)
    Compiler-assisted liveness hint: set at commit time for registers the
    static analysis (:mod:`repro.analysis.dataflow`) proved dead-on-commit
    (never read again before redefinition); cleared whenever the register
    is re-accessed.  Only the ``dead-*`` policies consume it.

Implemented policies and their priority functions:

=============  ==============================================
PLRU           ``A``                      (prior work [41])
LRU            exact age (oracle recency)
MRT-PLRU       ``(T << 3) | A``
MRT-LRU        ``T`` then exact age       (perfect variant)
LRC            ``(T << 4) | (C << 3) | A``  (the paper's policy)
dead-first     ``(D << 7) | LRC``  (dead registers evict first)
dead-elide     dead-first + BSI writeback elision in the VRMU
=============  ==============================================

Policies are constructed through the :data:`POLICIES` factory table —
:meth:`ReplacementPolicy.from_spec` / :func:`make_policy` — so config
strings, sweeps, and the Fig 12 study all share one registry.  Lint rule
VRC009 flags ad-hoc subclass construction in library code.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

A_MAX = 7  # 3-bit age
T_MAX = 7  # 3-bit thread recency

#: policy-name -> class factory table; populated by :func:`register_policy`
POLICIES: Dict[str, Type["ReplacementPolicy"]] = {}


def register_policy(cls: Type["ReplacementPolicy"]) -> Type["ReplacementPolicy"]:
    """Class decorator registering a policy under ``cls.name``."""
    POLICIES[cls.name] = cls
    return cls


class ReplacementPolicy:
    """Base class holding the T/C/A/D metadata arrays."""

    #: subclass name used by :meth:`from_spec`
    name = "base"
    #: whether the policy consumes the commit (C) bit
    uses_commit_bit = False
    #: whether the policy consumes thread-recency (T) bits
    uses_thread_bits = False
    #: whether the policy consumes dead-on-commit (D) hints — selecting
    #: such a policy is what turns static liveness annotation on
    uses_dead_hints = False
    #: whether the VRMU may skip the BSI spill of a dead victim
    elides_dead_writebacks = False

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("policy capacity must be >= 1")
        self.capacity = capacity
        self.T = np.zeros(capacity, dtype=np.int64)
        self.C = np.ones(capacity, dtype=np.int64)
        self.A = np.zeros(capacity, dtype=np.int64)
        self.D = np.zeros(capacity, dtype=np.int64)  # dead-on-commit hint
        self.stamp = np.zeros(capacity, dtype=np.int64)  # exact recency
        self._clock = 0

    @classmethod
    def from_spec(cls, spec: str, capacity: int) -> "ReplacementPolicy":
        """Instantiate a registered policy from its config-string name."""
        try:
            policy_cls = POLICIES[spec]
        except KeyError:
            raise ValueError(
                f"unknown policy {spec!r}; choose from {sorted(POLICIES)}")
        return policy_cls(capacity)

    # -- event hooks --------------------------------------------------------
    def on_instruction(self, valid: np.ndarray) -> None:
        """One instruction accessed the register file: age everyone."""
        self._clock += 1
        np.minimum(self.A + 1, A_MAX, out=self.A, where=valid)

    def on_access(self, idx: int) -> None:
        """Entry ``idx`` was referenced by the current instruction."""
        self.A[idx] = 0
        self.C[idx] = 1  # speculative commit initialization (Section 5.1)
        self.T[idx] = 0  # belongs to the running thread by construction
        self.D[idx] = 0  # referenced again: no longer dead
        self.stamp[idx] = self._clock

    def on_insert(self, idx: int) -> None:
        self.on_access(idx)

    def on_flush(self, idxs) -> None:
        """Rollback queue resets the C bit of flushed in-flight registers."""
        for idx in idxs:
            self.C[idx] = 0

    def mark_dead(self, idx: int) -> None:
        """Commit-time liveness hint: this entry's value is never read
        again before redefinition.  Cleared by the next :meth:`on_access`."""
        self.D[idx] = 1

    def on_context_switch(self, owner: np.ndarray, valid: np.ndarray,
                          prev_tid: int, new_tid: int) -> None:
        """Update T bits per Section 5.1."""
        prev_mask = valid & (owner == prev_tid)
        other_mask = valid & (owner != prev_tid)
        self.T[prev_mask] = T_MAX
        np.maximum(self.T - 1, 0, out=self.T, where=other_mask)
        self.T[valid & (owner == new_tid)] = 0

    # -- eviction ------------------------------------------------------------
    def priority(self) -> np.ndarray:
        """Eviction priority per entry (higher = evict first)."""
        raise NotImplementedError

    def select_victim(self, candidates: np.ndarray) -> int | None:
        """Index of the victim among boolean mask ``candidates`` (None if empty)."""
        if not candidates.any():
            return None
        prio = np.where(candidates, self.priority(), np.int64(-1 << 60))
        return int(prio.argmax())

    # -- introspection -------------------------------------------------------
    def describe(self, idx: int) -> dict:
        """Replacement metadata of one entry (telemetry event args).

        Exposes the T/C/A/D fields and the entry's current eviction priority
        so exported eviction events show *why* the policy chose a victim.
        """
        return {"T": int(self.T[idx]), "C": int(self.C[idx]),
                "A": int(self.A[idx]), "D": int(self.D[idx]),
                "prio": int(self.priority()[idx])}


@register_policy
class PLRU(ReplacementPolicy):
    """Age-only pseudo-LRU, as in the NSF [41] — thrashes across threads."""

    name = "plru"

    def priority(self) -> np.ndarray:
        return self.A


@register_policy
class LRU(ReplacementPolicy):
    """Exact recency (perfect LRU) — still scheduling-oblivious."""

    name = "lru"

    def priority(self) -> np.ndarray:
        return self._clock - self.stamp


@register_policy
class MRTPLRU(ReplacementPolicy):
    """Most-Recent-Thread PLRU: T bits concatenated above the PLRU age."""

    name = "mrt-plru"
    uses_thread_bits = True

    def priority(self) -> np.ndarray:
        return (self.T << 3) | self.A


@register_policy
class MRTLRU(ReplacementPolicy):
    """MRT with exact ages (perfect variant of Figure 12)."""

    name = "mrt-lru"
    uses_thread_bits = True

    def priority(self) -> np.ndarray:
        return (self.T << 40) + (self._clock - self.stamp)


@register_policy
class LRC(ReplacementPolicy):
    """Least Recently Committed: T, then C, then A (the paper's policy)."""

    name = "lrc"
    uses_commit_bit = True
    uses_thread_bits = True

    def priority(self) -> np.ndarray:
        return (self.T << 4) | (self.C << 3) | self.A


@register_policy
class DeadFirstLRC(LRC):
    """LRC with compiler dead hints concatenated on top.

    A register the static liveness pass proved dead-on-commit outranks
    every live entry (the full LRC priority is 7 bits, so ``D`` sits at
    bit 7): the cache preferentially reuses slots whose values can never
    be read again, keeping live working sets resident longer.
    """

    name = "dead-first"
    uses_dead_hints = True

    def priority(self) -> np.ndarray:
        return (self.D << 7) | super().priority()


@register_policy
class DeadElideLRC(DeadFirstLRC):
    """Dead-first eviction plus BSI writeback elision.

    In addition to preferring dead victims, the VRMU skips the backing-
    store spill entirely when the evicted register is dead — its value is
    unreadable, so the writeback bandwidth and port occupancy are pure
    waste (the compiler-assisted RF-cache argument from PAPERS.md).
    """

    name = "dead-elide"
    elides_dead_writebacks = True


def make_policy(name: str, capacity: int) -> ReplacementPolicy:
    """Instantiate a policy by registered name (see :data:`POLICIES`)."""
    return ReplacementPolicy.from_spec(name, capacity)


@register_policy
class SRRIP(ReplacementPolicy):
    """Static Re-Reference Interval Prediction [33], adapted to registers.

    The paper argues (Section 7) that RRIP-class policies "sample cache
    sets to determine whether cache items are recency-friendly or averse
    based on prior access, which does not work for registers as the reuse
    distance depends on the instruction and context switch behavior."
    Implemented here so that claim can be measured: entries insert with a
    long predicted re-reference interval (RRPV = max-1), promote to 0 on a
    hit, and the victim is any entry at max RRPV (aging everyone when none
    is).  Scheduling-oblivious by construction.
    """

    name = "srrip"
    RRPV_MAX = 7  # reuse the 3-bit A field as the RRPV

    def on_access(self, idx: int) -> None:
        super().on_access(idx)
        self.A[idx] = 0                      # promoted on re-reference

    def on_insert(self, idx: int) -> None:
        super().on_insert(idx)
        self.A[idx] = self.RRPV_MAX - 1      # long re-reference prediction

    def on_instruction(self, valid) -> None:
        # RRIP does not age on every access; aging happens at eviction time
        self._clock += 1

    def select_victim(self, candidates: np.ndarray) -> int | None:
        if not candidates.any():
            return None
        # age until some candidate reaches RRPV max, then evict it
        while True:
            at_max = candidates & (self.A >= self.RRPV_MAX)
            if at_max.any():
                return int(np.flatnonzero(at_max)[0])
            np.minimum(self.A + 1, self.RRPV_MAX, out=self.A,
                       where=candidates)

    def priority(self) -> np.ndarray:
        return self.A


@register_policy
class RandomPolicy(ReplacementPolicy):
    """Uniform random replacement — the no-information floor.

    Deterministic (xorshift seeded at construction) so simulations stay
    reproducible.
    """

    name = "random"

    def __init__(self, capacity: int, seed: int = 0x9E3779B9) -> None:
        super().__init__(capacity)
        self._state = seed or 1

    def _next(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x

    def select_victim(self, candidates: np.ndarray) -> int | None:
        idxs = np.flatnonzero(candidates)
        if not idxs.size:
            return None
        return int(idxs[self._next() % idxs.size])

    def priority(self) -> np.ndarray:
        # only used for introspection; selection is randomized
        return self.A
