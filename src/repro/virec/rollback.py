"""Rollback queue: tracks in-flight instructions' register slots (Section 5.1).

After an instruction hits in the tag store, its physical register indices
and a memory-operation flag are pushed.  Commit pops the oldest entry; a
context switch compacts every queued entry into the set of slots whose
commit (C) bits must be reset — exactly the flushed in-flight registers the
LRC policy then retains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from ..stats.counters import Stats


@dataclass(frozen=True)
class RollbackEntry:
    slots: Tuple[int, ...]
    is_mem: bool


class RollbackQueue:
    """FIFO with depth equal to the maximum backend occupancy."""

    def __init__(self, depth: int = 4, stats: Stats | None = None) -> None:
        self.depth = depth
        self.stats = stats if stats is not None else Stats("rollback")
        self._queue: deque[RollbackEntry] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.depth

    def push(self, slots: Iterable[int], is_mem: bool) -> None:
        """Record an instruction entering the backend."""
        if self.full:
            # bounded by in-order commit; drop oldest defensively and count it
            self._queue.popleft()
            self.stats.inc("overflow")
        self._queue.append(RollbackEntry(tuple(slots), is_mem))

    def pop_commit(self) -> RollbackEntry | None:
        """Commit stage signal: delete the oldest entry."""
        if self._queue:
            return self._queue.popleft()
        return None

    @property
    def oldest_is_mem(self) -> bool:
        """CSL mask input: is the oldest in-flight instruction a memory op?"""
        return bool(self._queue) and self._queue[0].is_mem

    def flush(self) -> Set[int]:
        """Context switch: compact all queued slots into a 1-hot reset set."""
        slots: Set[int] = set()
        for entry in self._queue:
            slots.update(entry.slots)
        self._queue.clear()
        self.stats.inc("flushes")
        return slots
