"""VRMU tag store: the CAM mapping (thread, architectural reg) -> physical slot.

The tag store is the content-addressable memory of Section 5.1.  Each of the
``capacity`` physical register-file entries carries: a valid bit, the owning
thread id, the architectural (flat) register number, a dirty bit, and a
``fill_ready`` cycle while a backing-store fill is in flight.  Replacement
metadata (T/C/A) lives in the attached policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..stats.counters import Stats
from .policies import ReplacementPolicy


class TagStore:
    """Fully-associative mapping of live architectural registers."""

    def __init__(self, capacity: int, policy: ReplacementPolicy,
                 stats: Optional[Stats] = None) -> None:
        if policy.capacity != capacity:
            raise ValueError("policy capacity mismatch")
        self.capacity = capacity
        self.policy = policy
        self.stats = stats if stats is not None else Stats("tagstore")
        self.valid = np.zeros(capacity, dtype=bool)
        self.owner = np.full(capacity, -1, dtype=np.int64)
        self.areg = np.full(capacity, -1, dtype=np.int64)
        self.dirty = np.zeros(capacity, dtype=bool)
        self.fill_ready = np.zeros(capacity, dtype=np.int64)
        self._map: Dict[Tuple[int, int], int] = {}

    # -- lookup ---------------------------------------------------------------
    def lookup(self, tid: int, flat_reg: int) -> Optional[int]:
        """Physical slot of (thread, register), or None if not resident."""
        return self._map.get((tid, flat_reg))

    def resident_count(self, tid: Optional[int] = None) -> int:
        if tid is None:
            return int(self.valid.sum())
        return int((self.valid & (self.owner == tid)).sum())

    def resident_regs(self, tid: int) -> List[int]:
        """Flat register indices of ``tid`` currently resident."""
        return sorted(int(r) for (t, r) in self._map if t == tid)

    def occupancy_by_thread(self) -> Dict[int, int]:
        """Current register-cache occupancy per owning thread id.

        Telemetry probe: the per-thread share of the physical register
        cache, the time series the paper's contention story is about.
        """
        owners = self.owner[self.valid]
        if not owners.size:
            return {}
        unique, counts = np.unique(owners, return_counts=True)
        return {int(t): int(c) for t, c in zip(unique, counts)}

    # -- allocation -------------------------------------------------------------
    def free_slot(self) -> Optional[int]:
        """Index of an invalid slot, or None when the cache is full."""
        free = np.flatnonzero(~self.valid)
        return int(free[0]) if free.size else None

    def select_victim(self, exclude_slots, now: int) -> Optional[int]:
        """Choose an eviction victim.

        Excludes ``exclude_slots`` (registers of the instruction currently in
        decode — they must not evict each other) and slots whose fill is
        still in flight.  Returns None when nothing is evictable.
        """
        candidates = self.valid & (self.fill_ready <= now)
        for slot in exclude_slots:
            candidates[slot] = False
        return self.policy.select_victim(candidates)

    def evict(self, slot: int) -> Tuple[int, int, bool]:
        """Remove the mapping at ``slot``; returns (tid, flat_reg, dirty)."""
        if not self.valid[slot]:
            raise ValueError(f"evicting invalid slot {slot}")
        tid, reg = int(self.owner[slot]), int(self.areg[slot])
        dirty = bool(self.dirty[slot])
        del self._map[(tid, reg)]
        self.valid[slot] = False
        self.owner[slot] = -1
        self.areg[slot] = -1
        self.dirty[slot] = False
        self.stats.inc("evictions")
        return tid, reg, dirty

    def insert(self, slot: int, tid: int, flat_reg: int, now: int,
               fill_ready: int = 0, dirty: bool = False) -> None:
        """Install (tid, flat_reg) at ``slot`` (must be invalid)."""
        if self.valid[slot]:
            raise ValueError(f"inserting into occupied slot {slot}")
        if (tid, flat_reg) in self._map:
            raise ValueError(f"duplicate mapping for thread {tid} reg {flat_reg}")
        self.valid[slot] = True
        self.owner[slot] = tid
        self.areg[slot] = flat_reg
        self.dirty[slot] = dirty
        self.fill_ready[slot] = fill_ready
        self._map[(tid, flat_reg)] = slot
        self.policy.on_insert(slot)

    def valid_slots(self) -> np.ndarray:
        """Indices of currently-valid physical slots (fault-injection sites)."""
        return np.flatnonzero(self.valid)

    def refresh_fill(self, slot: int, ready: int) -> None:
        """Push ``slot``'s fill-ready cycle forward (refill-from-backing
        recovery: the resident value is being re-fetched in place, so the
        mapping survives but reads must wait for the clean copy)."""
        if not self.valid[slot]:
            raise ValueError(f"refreshing invalid slot {slot}")
        self.fill_ready[slot] = max(int(self.fill_ready[slot]), ready)

    # -- state updates ----------------------------------------------------------
    def touch(self, slot: int, is_write: bool) -> None:
        """Record a decode-stage access to a resident register."""
        if is_write:
            self.dirty[slot] = True
        self.policy.on_access(slot)

    def on_instruction(self) -> None:
        self.policy.on_instruction(self.valid)

    def on_context_switch(self, prev_tid: int, new_tid: int) -> None:
        self.policy.on_context_switch(self.owner, self.valid, prev_tid, new_tid)

    # -- invariants (used by property tests and VSan) ---------------------------
    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.SanitizerViolation` (an
        ``AssertionError`` subclass, so legacy callers still catch it) if
        internal state is inconsistent."""
        from ..errors import SanitizerViolation

        def fail(message: str) -> None:
            raise SanitizerViolation(message, invariant="tagstore.bijection")

        if len(self._map) != int(self.valid.sum()):
            fail("map/valid mismatch")
        for (tid, reg), slot in self._map.items():
            if not self.valid[slot]:
                fail(f"mapped slot {slot} invalid")
            if self.owner[slot] != tid or self.areg[slot] != reg:
                fail(f"slot {slot} tag mismatch")
        pairs = list(self._map.values())
        if len(pairs) != len(set(pairs)):
            fail("two mappings share a slot")
