"""Run-time analytics for the ViReC register cache.

Instruments a core to sample register-cache occupancy and produce the
research-facing summaries the paper's figures are distilled from:

* per-thread resident register counts over time (who owns the cache);
* eviction breakdowns (which thread-distance the victims came from —
  the direct measure of how well the T bits are working);
* register lifetime statistics (insert-to-evict interval distribution).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class OccupancySample:
    instruction_index: int
    per_thread: Dict[int, int]
    free: int


@dataclass
class RegisterCacheReport:
    """Aggregated analytics from one instrumented run."""

    capacity: int
    samples: List[OccupancySample] = field(default_factory=list)
    eviction_owner_distance: Dict[int, int] = field(default_factory=dict)
    lifetimes: List[int] = field(default_factory=list)

    @property
    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([self.capacity - s.free for s in self.samples]))

    @property
    def mean_free(self) -> float:
        if not self.samples:
            return float(self.capacity)
        return float(np.mean([s.free for s in self.samples]))

    def thread_share(self, tid: int) -> float:
        """Average fraction of resident entries owned by ``tid``."""
        if not self.samples:
            return 0.0
        shares = []
        for s in self.samples:
            resident = self.capacity - s.free
            if resident:
                shares.append(s.per_thread.get(tid, 0) / resident)
        return float(np.mean(shares)) if shares else 0.0

    @property
    def mean_lifetime(self) -> float:
        return float(np.mean(self.lifetimes)) if self.lifetimes else 0.0

    def summary(self) -> str:
        tids = sorted({t for s in self.samples for t in s.per_thread})
        lines = [
            f"register cache capacity      : {self.capacity}",
            f"mean occupancy               : {self.mean_occupancy:.1f} "
            f"({self.mean_occupancy / self.capacity:.0%})",
            f"mean register lifetime       : {self.mean_lifetime:.0f} accesses",
        ]
        for tid in tids:
            lines.append(f"  thread {tid} mean share       : "
                         f"{self.thread_share(tid):.1%}")
        if self.eviction_owner_distance:
            total = sum(self.eviction_owner_distance.values())
            lines.append("evictions by owner distance (0 = running thread):")
            for dist in sorted(self.eviction_owner_distance):
                count = self.eviction_owner_distance[dist]
                lines.append(f"  distance {dist}: {count} ({count / total:.0%})")
        return "\n".join(lines)


class RegisterCacheMonitor:
    """Attach to a ViReCCore; samples occupancy every ``period`` accesses."""

    def __init__(self, core, period: int = 16) -> None:
        self.core = core
        self.period = period
        self.report = RegisterCacheReport(capacity=core.vconfig.rf_size)
        self._access_count = 0
        self._insert_clock: Dict[int, int] = {}
        self._distance: Dict[int, int] = defaultdict(int)
        self._install()

    def _install(self) -> None:
        vrmu = self.core.vrmu
        ts = vrmu.tagstore
        orig_access = vrmu.access
        orig_evict = ts.evict
        orig_insert = ts.insert
        n_threads = len(self.core.threads)

        def access(tid, inst, t):
            self._access_count += 1
            if self._access_count % self.period == 0:
                per_thread = {
                    int(o): int(((ts.owner == o) & ts.valid).sum())
                    for o in sorted(set(ts.owner[ts.valid].tolist()))
                }
                self.report.samples.append(OccupancySample(
                    instruction_index=self._access_count,
                    per_thread=per_thread,
                    free=int((~ts.valid).sum())))
            self._current_tid = tid
            return orig_access(tid, inst, t)

        def evict(slot):
            owner = int(ts.owner[slot])
            running = getattr(self, "_current_tid", 0)
            distance = (owner - running) % max(1, n_threads)
            self._distance[distance] += 1
            if slot in self._insert_clock:
                self.report.lifetimes.append(
                    self._access_count - self._insert_clock.pop(slot))
            return orig_evict(slot)

        def insert(slot, tid, flat_reg, now, **kw):
            self._insert_clock[slot] = self._access_count
            return orig_insert(slot, tid, flat_reg, now, **kw)

        vrmu.access = access
        ts.evict = evict
        ts.insert = insert

    def finish(self) -> RegisterCacheReport:
        self.report.eviction_owner_distance = dict(self._distance)
        return self.report
