"""ViReC: the paper's contribution — VRMU, LRC policy, BSI, and the core."""

from .analysis import RegisterCacheMonitor, RegisterCacheReport
from .bsi import BackingStoreInterface
from .core import ViReCConfig, ViReCCore, make_nsf_core
from .csl import SysRegBuffer
from .oracle import (
    AccessTraceRecorder,
    RegisterTrace,
    ReplayResult,
    policy_quality,
    simulate_trace,
)
from .policies import (
    LRC,
    LRU,
    MRTLRU,
    MRTPLRU,
    PLRU,
    POLICIES,
    ReplacementPolicy,
    make_policy,
)
from .rollback import RollbackEntry, RollbackQueue
from .tagstore import TagStore
from .vrmu import VRMU, CapacityError

__all__ = [
    "AccessTraceRecorder", "BackingStoreInterface", "CapacityError", "LRC",
    "LRU", "MRTLRU", "MRTPLRU", "PLRU", "POLICIES", "RegisterCacheMonitor",
    "RegisterCacheReport", "RegisterTrace", "ReplacementPolicy",
    "ReplayResult", "RollbackEntry", "RollbackQueue", "SysRegBuffer",
    "TagStore", "VRMU", "ViReCConfig", "ViReCCore", "make_nsf_core",
    "make_policy", "policy_quality", "simulate_trace",
]
