"""Backing Store Interface (BSI): register fills and spills (Section 5.3).

The BSI sits in the execute stage and moves registers between the physical
register file and the dcache backing store through the shared LSQ/BSI port
(the arbiter always prioritizes demand LSQ requests; here the core's
``dcache_request`` serializes the port, and the VRMU issues latency-critical
fills before posted spills).

Implemented optimizations from the paper:

* **register-line pinning** — fills carry ``pin_delta=+1``, spills ``-1``,
  driving the dcache's 3-bit per-line pin counters;
* **dummy fill** — a destination-only register needs no old value: the RF
  gets a dummy value immediately and only a posted metadata transaction is
  sent, removing backing-store latency from the critical path;
* **non-blocking mode** — multiple pipelined requests in flight (one issue
  per cycle); the blocking variant serializes on completion (the
  area-efficient option the paper describes and we use for the NSF baseline).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.cgmt import ContextLayout
from ..stats.counters import Stats


class BackingStoreInterface:
    """Fill/spill engine between the register cache and the dcache."""

    def __init__(self, request_fn: Callable, layout: ContextLayout, *,
                 blocking: bool = False, dummy_fill_enabled: bool = True,
                 pinning_enabled: bool = True,
                 unpin_fn: Optional[Callable[[int], bool]] = None,
                 stats: Optional[Stats] = None) -> None:
        self.request = request_fn
        self.layout = layout
        #: metadata-only pin release (no port transaction) used by
        #: :meth:`elide_spill`; optional because only dead-hint policies
        #: ever elide
        self.unpin = unpin_fn
        self.blocking = blocking
        self.dummy_fill_enabled = dummy_fill_enabled
        self.pinning_enabled = pinning_enabled
        self.stats = stats if stats is not None else Stats("bsi")
        #: cycle until which a fill/spill is outstanding (CSL mask input)
        self.busy_until = 0
        #: port horizon contributed by spill transactions only — lets the
        #: profiler attribute spill-induced fill delays to spill_writeback
        self.spill_busy_until = 0
        #: fill-issue cycles lost to spill port occupancy since the VRMU
        #: last reset it (accumulated per instruction, purely observational)
        self.fill_spill_wait = 0
        self._next_issue = 0  # blocking-mode serialization
        #: optional :class:`~repro.faults.FaultInjector` probing backing-store
        #: lines on every register fill (strictly opt-in)
        self.fault_hook = None

    def _issue(self, t: int, addr: int, is_write: bool, pin_delta: int,
               ) -> "tuple[int, object]":
        if self.blocking:
            t = max(t, self._next_issue)
        t_issue, result = self.request(
            t, addr, is_write=is_write, is_register=True,
            pin_delta=pin_delta if self.pinning_enabled else 0)
        if self.blocking:
            self._next_issue = result.complete_at
        return t_issue, result

    # -- operations ------------------------------------------------------------
    def fill(self, t: int, tid: int, flat_reg: int) -> int:
        """Load a register from the backing store; returns data-ready cycle."""
        addr = self.layout.reg_addr(tid, flat_reg)
        t_issue, result = self._issue(t, addr, is_write=False, pin_delta=+1)
        if t_issue > t and self.spill_busy_until > t:
            held = min(self.spill_busy_until, t_issue) - t
            self.fill_spill_wait += held
            self.stats.inc("spill_port_wait_cycles", held)
        self.stats.inc("fills")
        if not result.hit:
            self.stats.inc("fill_backing_misses")
        done = result.complete_at
        if self.fault_hook is not None:
            done = self.fault_hook.on_fill(tid, flat_reg, addr, t, done)
        self.busy_until = max(self.busy_until, done)
        return done

    def dummy_fill(self, t: int, tid: int, flat_reg: int) -> int:
        """Destination-only register: dummy value now, metadata txn posted."""
        if not self.dummy_fill_enabled:
            return self.fill(t, tid, flat_reg)
        addr = self.layout.reg_addr(tid, flat_reg)
        self._issue(t, addr, is_write=False, pin_delta=+1)
        self.stats.inc("dummy_fills")
        # metadata transaction is off the critical path; RF writable now
        return t

    def spill(self, t: int, tid: int, flat_reg: int, dirty: bool) -> int:
        """Write an evicted register back to the backing store (posted)."""
        addr = self.layout.reg_addr(tid, flat_reg)
        t_issue, result = self._issue(t, addr, is_write=True, pin_delta=-1)
        self.stats.inc("spills")
        if dirty:
            self.stats.inc("dirty_spills")
        self.busy_until = max(self.busy_until, t_issue + 1)
        self.spill_busy_until = max(self.spill_busy_until, t_issue + 1)
        return t_issue + 1

    def elide_spill(self, t: int, tid: int, flat_reg: int) -> int:
        """Skip the writeback of a dead register (compiler-assisted elision).

        The value can never be read again, so no data moves: the only
        action is releasing the backing line's pin, modelled as free
        metadata (piggybacked on the eviction message rather than a port
        transaction).  Returns ``t`` — nothing occupies the port.
        """
        self.stats.inc("elided_spills")
        if self.pinning_enabled and self.unpin is not None:
            self.unpin(self.layout.reg_addr(tid, flat_reg))
        return t

    def sysreg_read(self, t: int, tid: int) -> int:
        """Prefetch a thread's system-register line (ping-pong buffer).

        System-register lines are pinned alongside the general-purpose
        register lines (Section 6.1: "each thread uses between 2 and 4 cache
        lines to store their general and system registers ... these lines
        are pinned so they cannot be evicted"); the saturating counter makes
        the pin persistent across the read/write ping-pong."""
        _, result = self._issue(t, self.layout.sysreg_addr(tid),
                                is_write=False, pin_delta=+1)
        self.stats.inc("sysreg_reads")
        return result.complete_at

    def sysreg_write(self, t: int, tid: int) -> int:
        """Write back the previous thread's system registers (posted)."""
        t_issue, _ = self._issue(t, self.layout.sysreg_addr(tid),
                                 is_write=True, pin_delta=0)
        self.stats.inc("sysreg_writes")
        return t_issue + 1
