"""Trace-driven register-cache analysis with a Belady-MIN oracle.

The paper motivates LRC as "aimed at evicting the registers used furthest in
the future, similar to Belady's MIN [12]" but never quantifies the gap to
the true clairvoyant optimum.  This module closes that loop:

* :class:`AccessTraceRecorder` hooks a :class:`~repro.virec.core.ViReCCore`
  and records the decode-stage register reference stream (thread, register,
  plus context-switch and flush markers);
* :func:`simulate_trace` replays a trace through a fully-associative
  register cache of any capacity under either a named policy from
  :mod:`repro.virec.policies` or the clairvoyant ``"opt"`` policy (evict the
  entry whose next reference is furthest in the future);
* :func:`policy_quality` reports each policy's hit rate as a fraction of
  OPT's — the "how close to MIN is LRC?" number.

The replay is *reference-level* (no timing), which is exactly the setting
in which Belady's algorithm is optimal.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..stats.counters import Stats
from .policies import make_policy


@dataclass
class TraceEvent:
    """One decode event: the registers one instruction references."""

    tid: int
    regs: Tuple[int, ...]          # flat architectural register indices
    kind: str = "access"           # "access" | "switch" | "flush"
    new_tid: int = -1              # for "switch" events


@dataclass
class RegisterTrace:
    """A recorded register reference stream."""

    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def accesses(self) -> int:
        return sum(len(e.regs) for e in self.events if e.kind == "access")

    def keys(self) -> List[Tuple[int, int]]:
        out = []
        for e in self.events:
            if e.kind == "access":
                out.extend((e.tid, r) for r in e.regs)
        return out


class AccessTraceRecorder:
    """Attach to a ViReC core and record its VRMU reference stream.

    Usage::

        core = ViReCCore(...)
        trace = AccessTraceRecorder.attach(core)
        core.run()
        # trace.events now holds the stream
    """

    def __init__(self, trace: Optional[RegisterTrace] = None) -> None:
        self.trace = trace if trace is not None else RegisterTrace()

    @classmethod
    def attach(cls, core) -> RegisterTrace:
        rec = cls()
        vrmu = core.vrmu
        orig_access = vrmu.access
        orig_switch = vrmu.on_context_switch
        orig_flush = vrmu.on_flush

        def access(tid, inst, t):
            if inst.regs:
                rec.trace.events.append(TraceEvent(
                    tid=tid, regs=tuple(r.flat for r in inst.regs)))
            return orig_access(tid, inst, t)

        def on_context_switch(prev_tid, new_tid):
            rec.trace.events.append(TraceEvent(tid=prev_tid, regs=(),
                                               kind="switch", new_tid=new_tid))
            return orig_switch(prev_tid, new_tid)

        def on_flush(tid, insts):
            rec.trace.events.append(TraceEvent(
                tid=tid, kind="flush",
                regs=tuple(r.flat for i in insts for r in i.regs)))
            return orig_flush(tid, insts)

        vrmu.access = access
        vrmu.on_context_switch = on_context_switch
        vrmu.on_flush = on_flush
        return rec.trace


@dataclass
class ReplayResult:
    policy: str
    capacity: int
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


def _next_use_index(keys: List[Tuple[int, int]]) -> Dict[Tuple[int, int], List[int]]:
    positions: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for i, key in enumerate(keys):
        positions[key].append(i)
    return positions


def simulate_trace(trace: RegisterTrace, capacity: int,
                   policy: str = "lrc") -> ReplayResult:
    """Replay ``trace`` through a register cache of ``capacity`` entries.

    ``policy`` is a name from :mod:`repro.virec.policies` or ``"opt"`` for
    the Belady-MIN oracle.  Registers referenced by the same instruction are
    mutually protected from evicting each other, mirroring the VRMU.
    """
    if policy == "opt":
        return _simulate_opt(trace, capacity)
    return _simulate_policy(trace, capacity, policy)


def _simulate_policy(trace: RegisterTrace, capacity: int,
                     name: str) -> ReplayResult:
    pol = make_policy(name, capacity)
    valid = np.zeros(capacity, dtype=bool)
    owner = np.full(capacity, -1, dtype=np.int64)
    slot_of: Dict[Tuple[int, int], int] = {}
    key_of: Dict[int, Tuple[int, int]] = {}
    hits = misses = 0

    for event in trace.events:
        if event.kind == "switch":
            pol.on_context_switch(owner, valid, event.tid, event.new_tid)
            continue
        if event.kind == "flush":
            slots = [slot_of[(event.tid, r)] for r in event.regs
                     if (event.tid, r) in slot_of]
            pol.on_flush(slots)
            continue
        pol.on_instruction(valid)
        inst_slots = []
        for reg in event.regs:
            key = (event.tid, reg)
            slot = slot_of.get(key)
            if slot is not None:
                hits += 1
                pol.on_access(slot)
            else:
                misses += 1
                free = np.flatnonzero(~valid)
                if free.size:
                    slot = int(free[0])
                else:
                    cand = valid.copy()
                    for s in inst_slots:
                        cand[s] = False
                    slot = pol.select_victim(cand)
                    if slot is None:  # pragma: no cover - capacity guard
                        slot = int(np.flatnonzero(valid)[0])
                    del slot_of[key_of[slot]]
                valid[slot] = True
                owner[slot] = event.tid
                slot_of[key] = slot
                key_of[slot] = key
                pol.on_insert(slot)
            inst_slots.append(slot)
    return ReplayResult(name, capacity, hits, misses)


def _simulate_opt(trace: RegisterTrace, capacity: int) -> ReplayResult:
    keys = trace.keys()
    positions = _next_use_index(keys)
    resident: Dict[Tuple[int, int], None] = {}
    hits = misses = 0
    i = 0
    for event in trace.events:
        if event.kind != "access":
            continue
        inst_keys = {(event.tid, r) for r in event.regs}
        for reg in event.regs:
            key = (event.tid, reg)
            if key in resident:
                hits += 1
            else:
                misses += 1
                if len(resident) >= capacity:
                    victim = _furthest_future(resident, positions, i, inst_keys)
                    del resident[victim]
                resident[key] = None
            i += 1
    return ReplayResult("opt", capacity, hits, misses)


def _furthest_future(resident, positions, now_idx: int, protected) -> Tuple[int, int]:
    best_key, best_next = None, -1
    for key in resident:
        if key in protected:
            continue
        uses = positions.get(key, [])
        j = bisect_right(uses, now_idx)
        nxt = uses[j] if j < len(uses) else 1 << 60  # never used again
        if nxt > best_next:
            best_key, best_next = key, nxt
    if best_key is None:  # everything protected: evict any non-protected-first
        best_key = next(iter(resident))
    return best_key


def policy_quality(trace: RegisterTrace, capacity: int,
                   policies: Sequence[str] = ("plru", "lru", "mrt-plru",
                                              "mrt-lru", "lrc")) -> Dict[str, float]:
    """Hit rate of each policy normalized to the Belady-MIN oracle."""
    opt = simulate_trace(trace, capacity, "opt")
    out = {"opt": 1.0, "opt_hit_rate": opt.hit_rate}
    for name in policies:
        r = simulate_trace(trace, capacity, name)
        out[name] = r.hit_rate / opt.hit_rate if opt.hit_rate else 1.0
    return out
